package quicsand

import (
	"bytes"
	"fmt"
	"testing"

	"quicsand/internal/capture"
	"quicsand/internal/oracle"
	"quicsand/internal/scenario"
	"quicsand/internal/telescope"
	"quicsand/internal/tlsmini"
)

// TestOracle is the differential-validation matrix: every built-in
// scenario's analysis must satisfy the analytic oracle's predictions —
// exact counters with zero tolerance, bounded counters inside their
// tolerance-free intervals — for workers ∈ {1, 2, 8}, both live and
// replayed from a recorded checkpoint. One Expectation per scenario
// serves all six runs: the oracle is worker- and mode-independent by
// construction, so any disagreement isolates a pipeline defect (or an
// unlearned collision class), never an oracle recomputation artifact.
func TestOracle(t *testing.T) {
	id, err := tlsmini.GenerateSelfSigned("quic.example.net", 600)
	if err != nil {
		t.Fatal(err)
	}
	for _, run := range goldenRuns {
		run := run
		t.Run(run.name, func(t *testing.T) {
			sc, err := scenario.Builtin(run.name)
			if err != nil {
				t.Fatal(err)
			}
			base := Config{
				Seed: 97, Scale: run.scale, ResearchThin: 1 << 14,
				Identity: id, Scenario: sc,
			}
			exp, err := Expect(base)
			if err != nil {
				t.Fatal(err)
			}
			if len(exp.Collisions) != 0 {
				t.Fatalf("built-in scenario has cross-role collisions: %v", exp.Collisions)
			}
			if exp.QUICEvents == 0 && exp.ScanBots == 0 && exp.MisconfScheduled == 0 {
				t.Fatal("empty expectation")
			}

			// Record one checkpoint for the replay half of the matrix.
			var trace bytes.Buffer
			w := telescope.NewWriter(&trace)
			recCfg := base
			recCfg.Workers = 4
			recCfg.Trace = w
			if _, err := Run(recCfg); err != nil {
				t.Fatal(err)
			}
			if err := w.Flush(); err != nil {
				t.Fatal(err)
			}

			for _, workers := range []int{1, 2, 8} {
				cfg := base
				cfg.Workers = workers

				live, err := Run(cfg)
				if err != nil {
					t.Fatal(err)
				}
				assertOracle(t, fmt.Sprintf("live/workers=%d", workers), exp, live)

				src, err := capture.NewSource(bytes.NewReader(trace.Bytes()))
				if err != nil {
					t.Fatal(err)
				}
				replayed, err := Replay(cfg, src)
				if err != nil {
					t.Fatal(err)
				}
				assertOracle(t, fmt.Sprintf("replay/workers=%d", workers), exp, replayed)
			}
		})
	}
}

// assertOracle evaluates the oracle against one analysis and fails the
// test on any violation, printing the full report for context.
func assertOracle(t *testing.T, label string, exp *oracle.Expectation, a *Analysis) {
	t.Helper()
	obs := a.OracleObserved()
	results := oracle.Evaluate(exp, obs)
	exactChecks := 0
	for _, r := range results {
		if r.Exact {
			exactChecks++
		}
		if !r.OK {
			t.Errorf("%s: %s: expected %s, observed %s", label, r.Name, r.Want, r.Got)
		}
	}
	if exactChecks == 0 {
		t.Errorf("%s: no exact checks ran", label)
	}
	if t.Failed() {
		t.Logf("%s:\n%s", label, oracle.Report(exp, results))
	}
}

// TestOracleModerateScale validates the oracle against the shared
// moderate-scale paper run (scale 0.05, nil Scenario — the hard-coded
// schedule path): ~50× denser than the matrix fixtures, so bound
// errors that only appear when events crowd each other surface here.
func TestOracleModerateScale(t *testing.T) {
	a := pipeline(t)
	exp, err := Expect(a.Config)
	if err != nil {
		t.Fatal(err)
	}
	assertOracle(t, "paper-0.05", exp, a)
}

// TestOracleDetectsDivergence guards the oracle's teeth: an Observed
// doctored in any single dimension must violate at least one check —
// otherwise the matrix above is vacuous.
func TestOracleDetectsDivergence(t *testing.T) {
	sc, err := scenario.Builtin("handshake-flood-qfam")
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Seed: 97, Scale: 0.002, ResearchThin: 1 << 14, Workers: 2, Scenario: sc}
	exp, err := Expect(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if n := len(oracle.Check(exp, a.OracleObserved())); n != 0 {
		t.Fatalf("clean run violates %d checks", n)
	}

	tamper := []struct {
		name string
		mut  func(o *oracle.Observed)
	}{
		{"tcp-icmp", func(o *oracle.Observed) { o.TCPICMP++ }},
		{"research", func(o *oracle.Observed) { o.ResearchPackets += 1 << 20 }},
		{"non-quic", func(o *oracle.Observed) { o.NonQUIC = 3 }},
		{"distinct-sources", func(o *oracle.Observed) { o.DistinctQUICSources-- }},
		{"mixed", func(o *oracle.Observed) { o.MixedSessions = 1 }},
		{"responder-volume", func(o *oracle.Observed) {
			for _, r := range o.Responders {
				r.Packets++
				break
			}
		}},
		{"retry-from-clean-victim", func(o *oracle.Observed) {
			for a, r := range o.Responders {
				if exp.Victims[a] != nil && !exp.Victims[a].AnyRetry {
					r.RetryPackets = 1
					break
				}
			}
		}},
		{"attack-flood", func(o *oracle.Observed) {
			for i := 0; i < 100000; i++ {
				o.QUICAttacks = append(o.QUICAttacks, o.QUICAttacks[0])
			}
		}},
		{"foreign-responder", func(o *oracle.Observed) {
			o.Responders[0xdeadbeef] = &oracle.ResponderObs{Packets: 1}
		}},
	}
	for _, tc := range tamper {
		t.Run(tc.name, func(t *testing.T) {
			obs := a.OracleObserved() // fresh projection per tampering
			tc.mut(obs)
			if len(oracle.Check(exp, obs)) == 0 {
				t.Errorf("tampered observation (%s) passed the oracle", tc.name)
			}
		})
	}
}
