// Package telemetry is the pipeline's zero-allocation metrics layer.
// Counters and fixed-bucket histograms live in plain per-shard structs
// embedded in the hot-path operators (dissector, sessionizer, slab
// pool, scatter, engine worker) — value fields, single-writer, no
// atomics, no allocation — and are merged at reduce time exactly like
// the sharded analysis state: commutative uint64 additions, so any
// worker count folds to the same totals where the underlying quantity
// is a property of the packet stream.
//
// Two determinism classes coexist in one Snapshot (DESIGN.md §13):
//
//   - stream-derived counters (packets dissected, parse failures,
//     sessions emitted, payload-cache hits, records replayed) are
//     bit-identical for every worker count and for live vs replayed
//     runs — the Stream projection exposes exactly these, and the
//     telemetry determinism tests assert their invariance;
//   - runtime counters (opener-cache hits, slab/batch recycling, tap
//     batch fill, queue high-water, per-shard balance) describe how a
//     particular execution ran and legitimately vary with scheduling.
//
// The live exposition side (Live, Server, Heartbeat) uses one
// cache-line-padded atomic bank per shard instead: telescoped's socket
// pipeline is open-ended, so its counters must be readable mid-run
// from the metrics endpoint and the heartbeat without racing the
// workers.
package telemetry

import "math/bits"

// HistBuckets is the fixed bucket count of Hist: powers of two from
// <=1 up to >=2^14, plus the zero bucket.
const HistBuckets = 16

// Hist is a fixed power-of-two-bucket histogram for small cardinal
// quantities (batch fill, queue depth). Observing is one shift-class
// instruction plus two increments — no allocation, no atomics; merging
// is element-wise addition.
type Hist struct {
	// Buckets[i] counts observations v with bits.Len64(v) == i, i.e.
	// bucket 0 holds v=0 and bucket i>0 holds v in [2^(i-1), 2^i).
	// The last bucket absorbs everything larger.
	Buckets [HistBuckets]uint64 `json:"buckets"`
	// Count and Sum track the observation count and total.
	Count uint64 `json:"count"`
	Sum   uint64 `json:"sum"`
}

// Observe records one value.
func (h *Hist) Observe(v uint64) {
	i := bits.Len64(v)
	if i >= HistBuckets {
		i = HistBuckets - 1
	}
	h.Buckets[i]++
	h.Count++
	h.Sum += v
}

// Merge folds o into h.
func (h *Hist) Merge(o *Hist) {
	for i := range h.Buckets {
		h.Buckets[i] += o.Buckets[i]
	}
	h.Count += o.Count
	h.Sum += o.Sum
}

// Mean returns the average observed value (0 when empty).
func (h *Hist) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.Count)
}

// Dissect counts the QUIC dissector's work. One struct lives in each
// shard's Dissector; all fields are stream-derived except the opener
// cache triple, which depends on how traffic interleaved on the shard.
type Dissect struct {
	// Datagrams counts UDP payloads offered to Dissect.
	Datagrams uint64 `json:"datagrams"`
	// Packets counts structurally valid QUIC packets (including
	// coalesced ones) inside accepted datagrams.
	Packets uint64 `json:"packets"`
	// ParseFailures counts datagrams rejected as not-QUIC — the deep
	// validation filter the paper's §4.1 false-positive ablation is
	// about.
	ParseFailures uint64 `json:"parse_failures"`
	// Decrypted counts Initials whose protection was removable with
	// the on-wire DCID (genuine client Initials).
	Decrypted uint64 `json:"decrypted"`
	// ClientHellos counts decrypted Initials carrying a parseable
	// ClientHello.
	ClientHellos uint64 `json:"client_hellos"`
	// Opener cache behavior (runtime: shard interleaving dependent).
	OpenerHits   uint64 `json:"opener_hits"`
	OpenerMisses uint64 `json:"opener_misses"`
	OpenerResets uint64 `json:"opener_resets"`
}

// Merge folds o into d (commutative).
func (d *Dissect) Merge(o *Dissect) {
	d.Datagrams += o.Datagrams
	d.Packets += o.Packets
	d.ParseFailures += o.ParseFailures
	d.Decrypted += o.Decrypted
	d.ClientHellos += o.ClientHellos
	d.OpenerHits += o.OpenerHits
	d.OpenerMisses += o.OpenerMisses
	d.OpenerResets += o.OpenerResets
}

// Sessions counts sessionizer activity. Emitted and SetSpills are
// stream-derived; the eviction-cause split (gap-split vs lazy sweep vs
// end-of-stream flush) depends on sweep cadence, which varies with the
// shard count.
type Sessions struct {
	// Emitted counts completed sessions.
	Emitted uint64 `json:"emitted"`
	// TimeoutSplits counts sessions closed inline by a same-source gap
	// exceeding the timeout.
	TimeoutSplits uint64 `json:"timeout_splits"`
	// SweepEvicted counts sessions closed by the lazy expiry sweep.
	SweepEvicted uint64 `json:"sweep_evicted"`
	// FlushEmitted counts sessions force-closed at end of stream.
	FlushEmitted uint64 `json:"flush_emitted"`
	// BudgetEvicted counts sessions force-closed because the active set
	// exceeded the sessionizer's hard memory budget (daemon mode); the
	// coldest session is evicted first. Zero when no budget is set.
	BudgetEvicted uint64 `json:"budget_evicted,omitempty"`
	// SetSpills counts inline anatomy sets (peer addrs/ports, SCIDs,
	// versions) that outgrew their inline arms and spilled to a map —
	// the compact-session optimization's miss counter.
	SetSpills uint64 `json:"set_spills"`
}

// Merge folds o into s (commutative).
func (s *Sessions) Merge(o *Sessions) {
	s.Emitted += o.Emitted
	s.TimeoutSplits += o.TimeoutSplits
	s.SweepEvicted += o.SweepEvicted
	s.FlushEmitted += o.FlushEmitted
	s.BudgetEvicted += o.BudgetEvicted
	s.SetSpills += o.SetSpills
}

// Detect counts the sliding-window detector's work (internal/detect).
// Observed/alert counters are stream-derived for a fixed window config
// (per-source windows see the same packets on any shard layout);
// SourcesEvicted is only nonzero under a source budget, which makes
// results depend on per-shard residency and is therefore runtime-class.
type Detect struct {
	// Observed counts QUIC-candidate packets offered to the detectors.
	Observed uint64 `json:"observed"`
	// AlertsOpened / AlertsClosed count alert episodes started and
	// finished (closed ≤ opened until the final flush).
	AlertsOpened uint64 `json:"alerts_opened"`
	AlertsClosed uint64 `json:"alerts_closed"`
	// SourcesTracked counts distinct sources ever given window state.
	SourcesTracked uint64 `json:"sources_tracked"`
	// SourcesEvicted counts cold source states dropped to stay under
	// the detector's source budget (runtime: shard-residency dependent).
	SourcesEvicted uint64 `json:"sources_evicted,omitempty"`
}

// Merge folds o into d (commutative).
func (d *Detect) Merge(o *Detect) {
	d.Observed += o.Observed
	d.AlertsOpened += o.AlertsOpened
	d.AlertsClosed += o.AlertsClosed
	d.SourcesTracked += o.SourcesTracked
	d.SourcesEvicted += o.SourcesEvicted
}

// Generate counts the background-radiation generator's work: one
// struct per shard merger. Event and packet counts plus the per-event
// payload cache are stream-derived; slab recycling is runtime.
type Generate struct {
	// EventsPlanned counts scheduled sources on the shard.
	EventsPlanned uint64 `json:"events_planned"`
	// EventsEmitted counts sources actually activated by the merger
	// (equal to EventsPlanned once the stream drains).
	EventsEmitted uint64 `json:"events_emitted"`
	// Packets counts generated packets.
	Packets uint64 `json:"packets"`
	// Payload-interning cache (per event, so stream-derived).
	PayloadHits   uint64 `json:"payload_hits"`
	PayloadMisses uint64 `json:"payload_misses"`
	// Packet-slab freelist behavior (runtime: reuse depends on shard
	// activation order).
	SlabGets   uint64 `json:"slab_gets"`
	SlabReuses uint64 `json:"slab_reuses"`
}

// Merge folds o into g (commutative).
func (g *Generate) Merge(o *Generate) {
	g.EventsPlanned += o.EventsPlanned
	g.EventsEmitted += o.EventsEmitted
	g.Packets += o.Packets
	g.PayloadHits += o.PayloadHits
	g.PayloadMisses += o.PayloadMisses
	g.SlabGets += o.SlabGets
	g.SlabReuses += o.SlabReuses
}

// Ingest counts the replay path: records read from a stored capture
// and how they were batched toward the shards. Records, DecodeDrops
// and Format are stream-derived; batching is runtime.
type Ingest struct {
	// Format is the source container ("qsnd", "pcap"); empty for
	// generated (non-replay) runs.
	Format string `json:"format,omitempty"`
	// Records counts packets read from the source.
	Records uint64 `json:"records"`
	// DecodeDrops counts records the decapsulation could not represent
	// (pcap: non-IPv4, fragments, unsupported transports).
	DecodeDrops uint64 `json:"decode_drops"`
	// Salvage-mode degradation ledger (DESIGN.md §14): all zero on
	// undamaged inputs, stream-derived given a fixed fault pattern —
	// except TransientRetries, which depends on I/O timing and is
	// runtime-class.
	CorruptRecords   uint64 `json:"corrupt_records,omitempty"`
	ResyncScans      uint64 `json:"resync_scans,omitempty"`
	SalvagedBytes    uint64 `json:"salvaged_bytes,omitempty"`
	SalvageMaxLost   uint64 `json:"salvage_max_lost,omitempty"`
	TransientRetries uint64 `json:"transient_retries,omitempty"`
	// Scatter batching (runtime).
	Batches     uint64 `json:"batches"`
	BatchFill   Hist   `json:"batch_fill"`
	BatchReuses uint64 `json:"batch_reuses"`
	BatchAllocs uint64 `json:"batch_allocs"`
	// Decode-after-scatter provenance (runtime: depends on the worker
	// count and source capabilities, so excluded from Stream).
	// DecodePath is "shard" when record decode ran on the shard
	// workers, "inline" when the reader decoded sequentially; SpanBytes
	// counts raw record-span bytes handed to shards on the span path.
	DecodePath string `json:"decode_path,omitempty"`
	SpanBytes  uint64 `json:"span_bytes,omitempty"`
}

// Merge folds o into i (commutative; a non-empty Format wins).
func (i *Ingest) Merge(o *Ingest) {
	if i.Format == "" {
		i.Format = o.Format
	}
	i.Records += o.Records
	i.DecodeDrops += o.DecodeDrops
	i.CorruptRecords += o.CorruptRecords
	i.ResyncScans += o.ResyncScans
	i.SalvagedBytes += o.SalvagedBytes
	i.SalvageMaxLost += o.SalvageMaxLost
	i.TransientRetries += o.TransientRetries
	i.Batches += o.Batches
	i.BatchFill.Merge(&o.BatchFill)
	i.BatchReuses += o.BatchReuses
	i.BatchAllocs += o.BatchAllocs
	if i.DecodePath == "" {
		i.DecodePath = o.DecodePath
	}
	i.SpanBytes += o.SpanBytes
}

// Engine counts the sharded engine's tap-merge machinery: batch sends,
// buffer recycling, and the deepest tap queue observed. All runtime.
type Engine struct {
	// TapBatches counts batches sent to the merge goroutine.
	TapBatches uint64 `json:"tap_batches"`
	// TapBatchFill is the batch-size distribution (full batches land
	// in one bucket; the tail batch per shard is partial).
	TapBatchFill Hist `json:"tap_batch_fill"`
	// Buffer recycling between merge and workers.
	BufReuses uint64 `json:"buf_reuses"`
	BufAllocs uint64 `json:"buf_allocs"`
	// QueueHighWater is the deepest per-shard tap queue seen (in
	// batches) — how far a fast shard ran ahead of the merge.
	QueueHighWater uint64 `json:"queue_high_water"`
}

// Merge folds o into e; QueueHighWater takes the maximum.
func (e *Engine) Merge(o *Engine) {
	e.TapBatches += o.TapBatches
	e.TapBatchFill.Merge(&o.TapBatchFill)
	e.BufReuses += o.BufReuses
	e.BufAllocs += o.BufAllocs
	if o.QueueHighWater > e.QueueHighWater {
		e.QueueHighWater = o.QueueHighWater
	}
}

// Trace counts the checkpoint writer: records written and records
// discarded after a sticky write error. Stream-derived.
type Trace struct {
	Written uint64 `json:"written"`
	Dropped uint64 `json:"dropped"`
}

// Merge folds o into t (commutative).
func (t *Trace) Merge(o *Trace) {
	t.Written += o.Written
	t.Dropped += o.Dropped
}

// Snapshot is the merged end-of-run view of every instrumented layer —
// the telemetry twin of Analysis. Runs assemble it at reduce time from
// the per-shard structs; telescoped assembles it at shutdown from its
// dissectors and live bank.
type Snapshot struct {
	// Workers is the shard count the run used.
	Workers int `json:"workers"`
	// ShardPackets is the per-shard packet count — the balance view
	// manifests attribute skew with (runtime: the partition hash is
	// deterministic, but the slice length tracks the worker count).
	ShardPackets []uint64 `json:"shard_packets,omitempty"`

	Dissect  Dissect  `json:"dissect"`
	Sessions Sessions `json:"sessions"`
	Generate Generate `json:"generate"`
	Ingest   Ingest   `json:"ingest"`
	Engine   Engine   `json:"engine"`
	Trace    Trace    `json:"trace"`
	Detect   Detect   `json:"detect"`
}

// Merge folds o into s. All component merges commute; ShardPackets
// merges element-wise (growing as needed) and Workers takes the
// maximum, so partial snapshots combine deterministically.
func (s *Snapshot) Merge(o *Snapshot) {
	if o.Workers > s.Workers {
		s.Workers = o.Workers
	}
	for len(s.ShardPackets) < len(o.ShardPackets) {
		s.ShardPackets = append(s.ShardPackets, 0)
	}
	for i, n := range o.ShardPackets {
		s.ShardPackets[i] += n
	}
	s.Dissect.Merge(&o.Dissect)
	s.Sessions.Merge(&o.Sessions)
	s.Generate.Merge(&o.Generate)
	s.Ingest.Merge(&o.Ingest)
	s.Engine.Merge(&o.Engine)
	s.Trace.Merge(&o.Trace)
	s.Detect.Merge(&o.Detect)
}

// Skew returns the shard balance ratio max/mean of ShardPackets
// (1.0 = perfectly balanced; 0 when empty).
func (s *Snapshot) Skew() float64 {
	return skew(s.ShardPackets)
}

func skew(counts []uint64) float64 {
	if len(counts) == 0 {
		return 0
	}
	var total, max uint64
	for _, n := range counts {
		total += n
		if n > max {
			max = n
		}
	}
	if total == 0 {
		return 0
	}
	mean := float64(total) / float64(len(counts))
	return float64(max) / mean
}

// Stream is the worker-invariant projection of a Snapshot: every field
// is a pure property of the packet stream, so two runs over the same
// stream — any worker count, live or replayed — produce bit-identical
// Streams. The telemetry determinism tests compare exactly this.
type Stream struct {
	Datagrams     uint64 `json:"datagrams"`
	QUICPackets   uint64 `json:"quic_packets"`
	ParseFailures uint64 `json:"parse_failures"`
	Decrypted     uint64 `json:"decrypted"`
	ClientHellos  uint64 `json:"client_hellos"`

	SessionsEmitted uint64 `json:"sessions_emitted"`
	SetSpills       uint64 `json:"set_spills"`

	EventsPlanned    uint64 `json:"events_planned"`
	GeneratedPackets uint64 `json:"generated_packets"`
	PayloadHits      uint64 `json:"payload_hits"`
	PayloadMisses    uint64 `json:"payload_misses"`

	IngestRecords uint64 `json:"ingest_records"`
	DecodeDrops   uint64 `json:"decode_drops"`

	// Salvage degradation is stream-derived for a fixed fault pattern
	// (the single reader goroutine skips the same spans every run);
	// TransientRetries is excluded — retry counts depend on I/O timing.
	CorruptRecords uint64 `json:"corrupt_records"`
	ResyncScans    uint64 `json:"resync_scans"`
	SalvagedBytes  uint64 `json:"salvaged_bytes"`
	SalvageMaxLost uint64 `json:"salvage_max_lost"`

	TraceWritten uint64 `json:"trace_written"`
	TraceDropped uint64 `json:"trace_dropped"`
}

// Stream projects the worker-invariant counters out of the snapshot.
func (s *Snapshot) Stream() Stream {
	return Stream{
		Datagrams:        s.Dissect.Datagrams,
		QUICPackets:      s.Dissect.Packets,
		ParseFailures:    s.Dissect.ParseFailures,
		Decrypted:        s.Dissect.Decrypted,
		ClientHellos:     s.Dissect.ClientHellos,
		SessionsEmitted:  s.Sessions.Emitted,
		SetSpills:        s.Sessions.SetSpills,
		EventsPlanned:    s.Generate.EventsPlanned,
		GeneratedPackets: s.Generate.Packets,
		PayloadHits:      s.Generate.PayloadHits,
		PayloadMisses:    s.Generate.PayloadMisses,
		IngestRecords:    s.Ingest.Records,
		DecodeDrops:      s.Ingest.DecodeDrops,
		CorruptRecords:   s.Ingest.CorruptRecords,
		ResyncScans:      s.Ingest.ResyncScans,
		SalvagedBytes:    s.Ingest.SalvagedBytes,
		SalvageMaxLost:   s.Ingest.SalvageMaxLost,
		TraceWritten:     s.Trace.Written,
		TraceDropped:     s.Trace.Dropped,
	}
}
