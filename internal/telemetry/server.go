package telemetry

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
)

// Server is the live exposition endpoint: /metrics serves the
// Prometheus text format (progress gauges while the run is live, the
// full merged Snapshot once SetFinal is called) and /debug/pprof/*
// serves the standard profiling handlers. It owns its listener and
// mux, so closing it tears down everything it started.
type Server struct {
	ln   net.Listener
	srv  *http.Server
	done chan struct{}

	mu       sync.Mutex
	live     *Live
	progress Progress
	hasProg  bool
	final    *Snapshot
}

// NewServer listens on addr and starts serving /metrics and
// /debug/pprof. live may be nil when only a final snapshot will be
// exposed. Use Addr to discover the bound address (addr may use port
// 0) and Close to shut down.
func NewServer(addr string, live *Live) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{ln: ln, done: make(chan struct{}), live: live}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s.srv = &http.Server{Handler: mux}
	go func() {
		defer close(s.done)
		s.srv.Serve(ln) //nolint:errcheck // ErrServerClosed after Close
	}()
	return s, nil
}

// Addr returns the address the server is listening on.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// SetProgress publishes a heartbeat sample to /metrics.
func (s *Server) SetProgress(p Progress) {
	s.mu.Lock()
	s.progress = p
	s.hasProg = true
	s.mu.Unlock()
}

// SetFinal publishes the merged end-of-run snapshot to /metrics.
func (s *Server) SetFinal(snap *Snapshot) {
	s.mu.Lock()
	s.final = snap
	s.mu.Unlock()
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")

	s.mu.Lock()
	p, hasProg := s.progress, s.hasProg
	final := s.final
	live := s.live
	s.mu.Unlock()

	// Live counters are sampled fresh on every scrape; the heartbeat's
	// derived gauges (rate, skew, heap) refresh at its cadence.
	if live != nil {
		var packets, bytes, nonQUIC, alerts uint64
		for i := range live.shards {
			sh := &live.shards[i]
			packets += sh.Packets.Load()
			bytes += sh.Bytes.Load()
			nonQUIC += sh.NonQUIC.Load()
			alerts += sh.Alerts.Load()
		}
		promCounter(w, "quicsand_live_packets_total", "Packets observed so far.", packets)
		promCounter(w, "quicsand_live_bytes_total", "Payload bytes observed so far.", bytes)
		promCounter(w, "quicsand_live_non_quic_total", "Non-QUIC datagrams observed so far.", nonQUIC)
		promCounter(w, "quicsand_live_alerts_total", "Detector alert episodes opened so far.", alerts)
		name := "quicsand_live_shard_packets_total"
		fmt.Fprintf(w, "# HELP %s Packets observed per shard so far.\n# TYPE %s counter\n", name, name)
		for i := range live.shards {
			fmt.Fprintf(w, "%s{shard=\"%d\"} %d\n", name, i, live.shards[i].Packets.Load())
		}
	}
	if hasProg {
		promGaugeF(w, "quicsand_progress_packets_per_sec", "Throughput at the last heartbeat.", p.PacketsPerSec)
		promGaugeF(w, "quicsand_progress_shard_skew", "Max/mean shard packet ratio at the last heartbeat.", p.Skew)
		promGaugeF(w, "quicsand_progress_heap_bytes", "Heap in use at the last heartbeat.", float64(p.HeapBytes))
		promGaugeF(w, "quicsand_progress_goroutines", "Goroutines at the last heartbeat.", float64(p.Goroutines))
	}
	if final != nil {
		final.WritePrometheus(w, "quicsand")
	}
}

// Close stops the listener and waits for the serve goroutine to exit,
// so a start/stop cycle leaves no goroutines behind.
func (s *Server) Close() error {
	err := s.srv.Close()
	<-s.done
	return err
}
