package ibr

import (
	"testing"

	"quicsand/internal/netmodel"
	"quicsand/internal/telescope"
)

// ledgerGenerator schedules one flood plan per rate-curve shape and
// amplification level onto a ledger-recording generator, so the tests
// can pin schedule-time predictions against what the builders emit.
func ledgerGenerator(t *testing.T) *Generator {
	t.Helper()
	g, err := NewEmpty(Config{
		Seed: 11, Scale: 1, SkipResearch: true,
		Identity: ibrIdentity, RecordLedger: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	victims := PickDistinctVictims(g.Census().Servers, 6, g.ForkRNG("test/victims"))
	if len(victims) < 6 {
		t.Fatalf("census too small: %d victims", len(victims))
	}
	for i, p := range []FloodPlan{
		{Vector: VectorQUIC, Attacks: 5, Shape: ShapeBurst, SCIDRatio: -1},
		{Vector: VectorQUIC, Attacks: 5, Shape: ShapeSquare, SCIDRatio: -1, Amplification: 3},
		{Vector: VectorQUIC, Attacks: 5, Shape: ShapeRamp, SCIDRatio: -1, Amplification: 2.5,
			RetryMitigated: true, DurMedianSec: 90},
		{Vector: VectorCommonMix, Attacks: 8, BasePPS: 0.1},
	} {
		p.Victims = victims[i%3 : i%3+3]
		g.AddFloodPlan(string(rune('a'+i)), p)
	}
	g.AddScanPlan("scan", ScanPlan{Bots: 20, TagShare: -1})
	g.AddMisconfigPlan("misc", MisconfigPlan{Sources: 15})
	return g
}

// TestFloodPacketsMatchesBuild is the contract behind every exact
// flood prediction: FloodPackets (schedule-time arithmetic) must equal
// the number of packets floodSpec.build materializes, per victim, for
// every shape, amplification level and vector.
func TestFloodPacketsMatchesBuild(t *testing.T) {
	g := ledgerGenerator(t)
	led := g.Ledger

	wantQUIC := make(map[netmodel.Addr]uint64)
	wantCommon := make(map[netmodel.Addr]uint64)
	var wantTotalFlood uint64
	for _, f := range led.Floods {
		if f.Vector == VectorQUIC {
			wantQUIC[f.Victim] += f.Packets
		} else {
			wantCommon[f.Victim] += f.Packets
		}
		wantTotalFlood += f.Packets
		if got := f.Arrivals() * uint64(f.Amp); got != f.Packets {
			t.Errorf("%s: Arrivals×Amp = %d, Packets = %d", f.Label, got, f.Packets)
		}
	}
	if len(wantQUIC) == 0 || len(wantCommon) == 0 {
		t.Fatal("ledger missing flood entries")
	}

	gotQUIC := make(map[netmodel.Addr]uint64)
	gotCommon := make(map[netmodel.Addr]uint64)
	botPackets := make(map[netmodel.Addr]uint64)
	misconfPackets := make(map[netmodel.Addr]uint64)
	g.Run(func(p *telescope.Packet) {
		switch {
		case p.Proto != telescope.ProtoUDP:
			gotCommon[p.Src]++
		case p.IsResponse():
			if _, ok := wantQUIC[p.Src]; ok {
				gotQUIC[p.Src]++
			} else {
				misconfPackets[p.Src]++
			}
		default:
			botPackets[p.Src]++
		}
	})

	for v, want := range wantQUIC {
		if gotQUIC[v] != want {
			t.Errorf("QUIC victim %v: built %d packets, ledger predicts %d", v, gotQUIC[v], want)
		}
	}
	for v, want := range wantCommon {
		if gotCommon[v] != want {
			t.Errorf("common victim %v: built %d packets, ledger predicts %d", v, gotCommon[v], want)
		}
	}

	// Schedule-time visit counts bound the build-time packet draws.
	botVisits := make(map[netmodel.Addr]uint64)
	for _, b := range led.Bots {
		botVisits[b.Src] += uint64(b.Visits)
	}
	for src, pkts := range botPackets {
		visits := botVisits[src]
		if visits == 0 {
			t.Errorf("unscheduled bot source %v", src)
			continue
		}
		if pkts < visits*BotMinPacketsPerVisit || pkts > visits*BotMaxPacketsPerVisit {
			t.Errorf("bot %v: %d packets outside [%d, %d] for %d visits",
				src, pkts, visits*BotMinPacketsPerVisit, visits*BotMaxPacketsPerVisit, visits)
		}
	}
	misconfVisits := make(map[netmodel.Addr]uint64)
	for _, m := range led.Misconfig {
		misconfVisits[m.Src] += uint64(m.Visits)
	}
	for src, pkts := range misconfPackets {
		visits := misconfVisits[src]
		if visits == 0 {
			t.Errorf("unscheduled responder %v", src)
			continue
		}
		if pkts < visits*MisconfMinPacketsPerVisit || pkts > visits*MisconfMaxPacketsPerVisit {
			t.Errorf("responder %v: %d packets outside [%d, %d] for %d visits",
				src, pkts, visits*MisconfMinPacketsPerVisit, visits*MisconfMaxPacketsPerVisit, visits)
		}
	}
}

// TestLedgerBracketTimestamps pins the ledger's First/Last against the
// builders: a flood victim's earliest and latest packets are exactly
// the bracket packets the ledger predicts.
func TestLedgerBracketTimestamps(t *testing.T) {
	g := ledgerGenerator(t)
	first := make(map[netmodel.Addr]telescope.Timestamp)
	last := make(map[netmodel.Addr]telescope.Timestamp)
	quicVictim := make(map[netmodel.Addr]bool)
	for _, f := range g.Ledger.Floods {
		if f.Vector != VectorQUIC {
			continue
		}
		quicVictim[f.Victim] = true
		if ts, ok := first[f.Victim]; !ok || f.First() < ts {
			first[f.Victim] = f.First()
		}
		if f.Last() > last[f.Victim] {
			last[f.Victim] = f.Last()
		}
	}
	gotFirst := make(map[netmodel.Addr]telescope.Timestamp)
	gotLast := make(map[netmodel.Addr]telescope.Timestamp)
	g.Run(func(p *telescope.Packet) {
		if !quicVictim[p.Src] || !p.IsResponse() {
			return
		}
		if ts, ok := gotFirst[p.Src]; !ok || p.TS < ts {
			gotFirst[p.Src] = p.TS
		}
		if p.TS > gotLast[p.Src] {
			gotLast[p.Src] = p.TS
		}
	})
	for v := range quicVictim {
		if gotFirst[v] != first[v] || gotLast[v] != last[v] {
			t.Errorf("victim %v: built span [%d, %d], ledger predicts [%d, %d]",
				v, gotFirst[v], gotLast[v], first[v], last[v])
		}
	}
}

// TestLedgerOptIn: recording is off by default and never perturbs the
// stream — the same seed with and without a ledger yields an identical
// month.
func TestLedgerOptIn(t *testing.T) {
	run := func(record bool) (ts []telescope.Timestamp, led *Ledger) {
		g, err := NewEmpty(Config{
			Seed: 5, Scale: 1, SkipResearch: true,
			Identity: ibrIdentity, RecordLedger: record,
		})
		if err != nil {
			t.Fatal(err)
		}
		g.AddScanPlan("s", ScanPlan{Bots: 10, TagShare: -1})
		g.AddMisconfigPlan("m", MisconfigPlan{Sources: 5})
		g.Run(func(p *telescope.Packet) { ts = append(ts, p.TS) })
		return ts, g.Ledger
	}
	plain, noLedger := run(false)
	recorded, led := run(true)
	if noLedger != nil {
		t.Error("ledger allocated without RecordLedger")
	}
	if led == nil || len(led.Bots) != 10 || len(led.Misconfig) != 5 {
		t.Fatalf("ledger incomplete: %+v", led)
	}
	if len(plain) != len(recorded) {
		t.Fatalf("stream length changed with recording: %d vs %d", len(plain), len(recorded))
	}
	for i := range plain {
		if plain[i] != recorded[i] {
			t.Fatalf("packet %d timestamp changed with recording", i)
		}
	}
}
