package quicserver

import (
	"net"
	"testing"
	"time"

	"quicsand/internal/flood"
	"quicsand/internal/quicclient"
	"quicsand/internal/wire"
)

// TestAdaptiveRetryKicksInUnderLoad exercises the §6 proposal: with
// AdaptiveRetryThreshold set, an idle server completes handshakes in
// one round trip, but once a flood fills its connection table it
// switches to stateless RETRY validation.
func TestAdaptiveRetryKicksInUnderLoad(t *testing.T) {
	s := startServer(t, Config{
		Workers: 1, QueuePerWorker: 16, AdaptiveRetryThreshold: 0.5,
	})

	// Idle: no retry, minimal RTTs.
	res, err := quicclient.Dial(s.Addr().String(), quicclient.Config{ServerName: "server.test"})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed || res.SawRetry {
		t.Fatalf("idle handshake: completed=%v retry=%v", res.Completed, res.SawRetry)
	}

	// Flood: push the table past 50 % of 16 slots.
	trace, err := flood.RecordTrace(40, wire.Version1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := flood.RunLive(flood.LiveConfig{
		Target: s.Addr().String(), RatePPS: 400, Trace: trace,
		Collect: 300 * time.Millisecond,
	}); err != nil {
		t.Fatal(err)
	}
	if s.Metrics.RetriesSent.Load() == 0 {
		t.Fatalf("adaptive retry never engaged (accepted=%d)", s.Metrics.Accepted.Load())
	}

	// Under load, a legitimate client still completes — paying the
	// extra round trip.
	res2, err := quicclient.Dial(s.Addr().String(), quicclient.Config{ServerName: "server.test"})
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Completed {
		t.Fatal("legitimate client failed under adaptive retry")
	}
	if !res2.SawRetry {
		t.Fatal("loaded server should demand validation")
	}
	if res2.RTTs <= res.RTTs {
		t.Errorf("retry path RTTs (%d) should exceed idle path (%d)", res2.RTTs, res.RTTs)
	}
}

// TestAdaptiveRetryStateBounded: the state an adaptive server
// allocates under flood is bounded by the activation threshold plus
// validated connections, never the full flood volume.
func TestAdaptiveRetryStateBounded(t *testing.T) {
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(pc, Config{
		Identity: serverIdentity, Workers: 1, QueuePerWorker: 32,
		AdaptiveRetryThreshold: 0.25,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	trace, err := flood.RecordTrace(100, wire.Version1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := flood.RunLive(flood.LiveConfig{
		Target: s.Addr().String(), RatePPS: 500, Trace: trace,
		Collect: 300 * time.Millisecond,
	}); err != nil {
		t.Fatal(err)
	}
	accepted := s.Metrics.Accepted.Load()
	// Threshold is 8 connections; spoofed floods never validate, so
	// acceptance should stall near it (small races allowed).
	if accepted > 12 {
		t.Errorf("adaptive server accepted %d flood connections, want ≈8", accepted)
	}
	if s.Metrics.RetriesSent.Load() < 50 {
		t.Errorf("retries = %d, want most of the flood deflected", s.Metrics.RetriesSent.Load())
	}
}
