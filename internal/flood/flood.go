// Package flood implements the Table 1 benchmark: replaying recorded
// client Initial datagrams at configurable packet rates against a QUIC
// web server and measuring service availability.
//
// Two execution modes cover the paper's experiment:
//
//   - Model: a deterministic fluid-queue capacity model of the NGINX
//     worker pool, calibrated to the paper's observed per-worker
//     service rate (≈17 handshakes/s/worker, i.e. ≈59 ms per
//     handshake including crypto and state setup). It reproduces the
//     full 10–100,000 pps sweep instantly and deterministically.
//   - Live: replay against the real UDP server of internal/quicserver
//     (used at low rates by tests and examples; absolute throughput
//     depends on the host).
//
// The paper's methodology is mirrored: the trace is recorded with a
// real QUIC client and only client Initials are replayed ("replaying
// avoids bias from hand-crafting QUIC packets").
package flood

import (
	"fmt"
	"math"
	"time"
)

// Calibration constants for the capacity model (see EXPERIMENTS.md).
const (
	// HandshakeCost is the modelled per-Initial service time without
	// address validation: one ECDHE exchange, one certificate
	// signature, connection-state setup. Calibrated so 4 workers
	// answer ≈68 pps, matching Table 1's 68 % availability at 100 pps.
	HandshakeCost = 59 * time.Millisecond
	// RetryCost is the stateless path: one HMAC over the client
	// address, no state.
	RetryCost = 30 * time.Microsecond
	// ResponsesPerHandshake is the datagram count a served Initial
	// elicits (Initial+Handshake, Handshake, plus two keep-alive
	// PINGs — Table 1's ×4 accounting).
	ResponsesPerHandshake = 4
	// DrainTime is how long after the replay ends completions still
	// count, mirroring the paper's response-collection window.
	DrainTime = 10 * time.Second
)

// ModelConfig describes one Table 1 row's server configuration.
type ModelConfig struct {
	Workers        int
	QueuePerWorker int  // default 1024
	Retry          bool // RETRY address validation on
}

// Result is one benchmark outcome.
type Result struct {
	RatePPS       int
	Retry         bool
	Workers       int
	ClientReqs    int
	ServerResps   int
	Answered      int
	Availability  float64 // fraction of requests answered
	ExtraRTT      bool
	DroppedQueue  int
	ModelDuration time.Duration // replay duration (virtual in model mode)
}

// RunModel replays nRequests Initials at ratePPS against the fluid
// capacity model and returns the Table 1 row.
func RunModel(cfg ModelConfig, nRequests, ratePPS int) *Result {
	if cfg.QueuePerWorker == 0 {
		cfg.QueuePerWorker = 1024
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 4
	}
	cost := HandshakeCost.Seconds()
	if cfg.Retry {
		cost = RetryCost.Seconds()
	}
	queueCap := float64(cfg.QueuePerWorker) * cost // backlog bound in work-seconds

	// Per-worker fluid queues; arrivals round-robin across workers
	// (spoofed sources hash uniformly).
	backlog := make([]float64, cfg.Workers)
	lastT := make([]float64, cfg.Workers)
	answered, dropped := 0, 0
	interval := 1.0 / float64(ratePPS)
	var completions []float64 // completion time per accepted request

	for i := 0; i < nRequests; i++ {
		t := float64(i) * interval
		w := i % cfg.Workers
		// Drain the backlog for elapsed time.
		backlog[w] = math.Max(0, backlog[w]-(t-lastT[w]))
		lastT[w] = t
		if backlog[w]+cost > queueCap {
			dropped++
			continue
		}
		backlog[w] += cost
		completions = append(completions, t+backlog[w])
	}
	runT := float64(nRequests) * interval
	deadline := runT + DrainTime.Seconds()
	for _, ct := range completions {
		if ct <= deadline {
			answered++
		}
	}

	resps := answered * ResponsesPerHandshake
	if cfg.Retry {
		// Stateless validation answers every request with exactly one
		// Retry datagram; the paper's retry rows show resp == req.
		resps = answered
	}
	return &Result{
		RatePPS:       ratePPS,
		Retry:         cfg.Retry,
		Workers:       cfg.Workers,
		ClientReqs:    nRequests,
		ServerResps:   resps,
		Answered:      answered,
		Availability:  float64(answered) / float64(nRequests),
		ExtraRTT:      cfg.Retry,
		DroppedQueue:  dropped,
		ModelDuration: time.Duration(runT * float64(time.Second)),
	}
}

// Table1Rows reproduces the paper's nine configurations. traceLen is
// the recorded trace length (the paper used 500,000 packets); rows cap
// their request count at min(rate·300 s + 1, traceLen) exactly as the
// paper's client counts suggest.
func Table1Rows(traceLen int) []*Result {
	type row struct {
		pps     int
		retry   bool
		workers int
	}
	rows := []row{
		{10, false, 4},
		{100, false, 4},
		{1000, false, 4},
		{1000, false, 128},
		{10000, false, 128},
		{100000, false, 128},
		{1000, true, 4},
		{10000, true, 4},
		{100000, true, 4},
	}
	var out []*Result
	for _, r := range rows {
		n := r.pps*300 + 1
		if n > traceLen {
			n = traceLen
		}
		out = append(out, RunModel(ModelConfig{Workers: r.workers, Retry: r.retry}, n, r.pps))
	}
	return out
}

// FormatTable renders results in the paper's Table 1 layout.
func FormatTable(results []*Result) string {
	out := "Attack        NGINX Config                Results\n"
	out += fmt.Sprintf("%-10s %-6s %-9s %-11s %-12s %-10s %-8s\n",
		"Vol [pps]", "Retry", "Workers", "Client[#Req]", "Server[#Resp]", "Avail", "ExtraRTT")
	for _, r := range results {
		retry, rtt := "no", "no"
		if r.Retry {
			retry, rtt = "yes", "yes"
		}
		out += fmt.Sprintf("%-10d %-6s %-9d %-11d %-12d %-10s %-8s\n",
			r.RatePPS, retry, r.Workers, r.ClientReqs, r.ServerResps,
			fmt.Sprintf("%.0f%%", r.Availability*100), rtt)
	}
	return out
}

// ExtrapolateRate converts an observed telescope max-pps into the
// Internet-wide attack rate estimate the paper derives (×512 for a /9
// telescope).
func ExtrapolateRate(telescopeMaxPPS float64) float64 {
	return telescopeMaxPPS * 512
}
