package engine

import (
	"sort"
	"testing"
	"time"

	"quicsand/internal/telemetry"
)

// TestStageZeroWall pins the division guards: a stage that recorded no
// wall time (or a clock hiccup driving it negative) reports zero
// throughput instead of +Inf/NaN.
func TestStageZeroWall(t *testing.T) {
	if got := (Stage{Items: 100, Wall: 0}).PerSecond(); got != 0 {
		t.Errorf("zero-wall PerSecond = %g, want 0", got)
	}
	if got := (Stage{Items: 100, Wall: -time.Second}).PerSecond(); got != 0 {
		t.Errorf("negative-wall PerSecond = %g, want 0", got)
	}
	if got := (Stage{Items: 1000, Wall: time.Second}).PerSecond(); got != 1000 {
		t.Errorf("PerSecond = %g, want 1000", got)
	}
}

// TestStatsThroughputZeroWall covers Throughput before Finish stamps
// the wall time.
func TestStatsThroughputZeroWall(t *testing.T) {
	st := &Stats{ShardItems: []uint64{500, 500}}
	if got := st.Throughput(); got != 0 {
		t.Errorf("unfinished Throughput = %g, want 0", got)
	}
	st.Wall = 2 * time.Second
	if got := st.Throughput(); got != 500 {
		t.Errorf("Throughput = %g, want 500", got)
	}
}

// TestStageNamedMissing asserts lookups of absent stages return a zero
// Stage rather than panicking or matching a prefix.
func TestStageNamedMissing(t *testing.T) {
	st := &Stats{Stages: []Stage{{Name: "analyze", Items: 7, Wall: time.Second}}}
	if got := st.StageNamed("analyze"); got.Items != 7 {
		t.Errorf("StageNamed(analyze) = %+v", got)
	}
	if got := st.StageNamed("anal"); got != (Stage{}) {
		t.Errorf("StageNamed(prefix) = %+v, want zero Stage", got)
	}
	if got := st.StageNamed("nope"); got != (Stage{}) {
		t.Errorf("StageNamed(missing) = %+v, want zero Stage", got)
	}
}

// TestEngineTelemetryInvariants checks the tap-machinery accounting on
// real tapped runs: every batch sent was either freshly allocated or
// recycled (TapBatches == BufAllocs + BufReuses), the fill histogram
// saw every batch and every tapped item, and the inline single-worker
// path — which has no tap machinery — leaves the bank zero.
func TestEngineTelemetryInvariants(t *testing.T) {
	const total = 5000
	for _, workers := range []int{2, 4, 8} {
		feeds := make([]Feed[int], workers)
		for i := range feeds {
			i := i
			feeds[i] = func(emit func(int)) {
				for v := i; v < total; v += workers {
					emit(v)
				}
			}
		}
		var merged []int
		st := Run(Config{Workers: workers, BatchSize: 64}, feeds,
			func(shard, v int) bool { return true },
			&Tap[int]{
				Less: func(a, b int) bool { return a < b },
				Sink: func(v int) { merged = append(merged, v) },
			})
		e := &st.Engine
		if !sort.IntsAreSorted(merged) || len(merged) != total {
			t.Fatalf("workers=%d: merge broken (%d items)", workers, len(merged))
		}
		if e.TapBatches == 0 {
			t.Fatalf("workers=%d: no tap batches counted", workers)
		}
		if e.TapBatches != e.BufAllocs+e.BufReuses {
			t.Errorf("workers=%d: TapBatches %d != BufAllocs %d + BufReuses %d",
				workers, e.TapBatches, e.BufAllocs, e.BufReuses)
		}
		if e.TapBatchFill.Count != e.TapBatches {
			t.Errorf("workers=%d: fill count %d != batches %d",
				workers, e.TapBatchFill.Count, e.TapBatches)
		}
		if e.TapBatchFill.Sum != total {
			t.Errorf("workers=%d: fill sum %d != %d tapped items",
				workers, e.TapBatchFill.Sum, total)
		}
	}

	// Inline path: no tap goroutines, no batches, bank stays zero.
	var merged []int
	st := Run(Config{Workers: 1}, []Feed[int]{feedOf(2, 4, 6)},
		func(shard, v int) bool { return true },
		&Tap[int]{
			Less: func(a, b int) bool { return a < b },
			Sink: func(v int) { merged = append(merged, v) },
		})
	if len(merged) != 3 {
		t.Fatalf("inline tap delivered %d items", len(merged))
	}
	if st.Engine != (telemetry.Engine{}) {
		t.Errorf("inline run populated engine telemetry: %+v", st.Engine)
	}
}
