package ibr

// The scheduling ledger: an exact record of every event the generator
// scheduled, captured at plan time, before a single packet is built.
// The analytic oracle (internal/oracle) derives expected analysis
// outputs from it — per-event packet counts where they are
// deterministic (floods, research sweeps), tolerance-free bounds where
// build-time draws intervene (scan and misconfig sessions).
//
// Recording is opt-in (Config.RecordLedger) so the hot benchmarks and
// allocation budgets never pay for it, and it is purely observational:
// no ledger code may consume an RNG draw or reorder a fork, or the
// golden-trace corpus would shift.

import (
	"quicsand/internal/netmodel"
	"quicsand/internal/telescope"
	"quicsand/internal/wire"
)

// Build-time packet bounds the ledger's consumers rely on. They mirror
// the clamps in events.go (botSpec.build, misconfigSpec.build): the
// per-visit packet count is drawn while the stream runs, but it can
// never leave these ranges, so schedule-time visit counts convert to
// tolerance-free packet bounds.
const (
	// BotMinPacketsPerVisit / BotMaxPacketsPerVisit bound one scan
	// visit's packets (1 + Exp draw, clamped).
	BotMinPacketsPerVisit = 1
	BotMaxPacketsPerVisit = 120
	// MisconfMinPacketsPerVisit / MisconfMaxPacketsPerVisit bound one
	// misconfigured-responder visit (5 + Intn(13)).
	MisconfMinPacketsPerVisit = 5
	MisconfMaxPacketsPerVisit = 17
)

// LedgerResearch is one scheduled full-IPv4 research sweep.
type LedgerResearch struct {
	Label    string
	Host     netmodel.Addr
	StartSec float64
	DurSec   float64
	Records  uint64 // thinned records the sweep emits (exact)
	Weight   uint32 // packets each record represents
}

// LedgerBot is one scheduled scanning bot. Visits is drawn at schedule
// time and exact; per-visit packets are build-time draws bounded by
// Bot{Min,Max}PacketsPerVisit.
type LedgerBot struct {
	Label   string
	Src     netmodel.Addr
	Version wire.Version
	Visits  int
	Payload bool // visits carry real ClientHello payloads
}

// LedgerFlood is one scheduled flood event with every knob that
// determines its telescope footprint. Packets is the exact number of
// telescope packets the event materializes (FloodPackets).
type LedgerFlood struct {
	Label          string
	Vector         int // VectorQUIC, VectorTCP or VectorICMP (resolved)
	Victim         netmodel.Addr
	Org            string
	Version        wire.Version // QUIC events only
	StartSec       float64
	DurSec         float64
	PeakPkts       int
	BasePkts       int
	Shape          uint8
	Amp            int // response datagrams per arrival (>= 1)
	RetryMitigated bool
	NAddrs         int // spoofed client addresses
	NPorts         int // spoofed client ports
	Packets        uint64
}

// Arrivals returns the spoofed-packet arrival count of the event;
// Packets = Arrivals × Amp.
func (f *LedgerFlood) Arrivals() uint64 { return f.Packets / uint64(maxInt(f.Amp, 1)) }

// First and Last return the exact timestamps of the event's bracket
// packets — the victim answers from the first to the last spoofed
// packet, so they bound every packet of the event.
func (f *LedgerFlood) First() telescope.Timestamp { return tsAt(f.StartSec) }
func (f *LedgerFlood) Last() telescope.Timestamp  { return tsAt(f.StartSec + f.DurSec) }

// LedgerMisconfig is one scheduled misconfigured responder.
type LedgerMisconfig struct {
	Label    string
	Src      netmodel.Addr
	Version  wire.Version
	Visits   int
	StartSec float64 // resolved visit-window start
}

// Ledger accumulates everything one generator scheduled, in schedule
// order within each kind.
type Ledger struct {
	Research  []LedgerResearch
	Bots      []LedgerBot
	Floods    []LedgerFlood
	Misconfig []LedgerMisconfig
}

// FloodPackets returns the exact number of telescope packets one flood
// event materializes. It is the schedule-time twin of floodSpec.build:
// two bracket packets pin the attack extent, the shape draws peak+base
// arrival times (ShapeBurst expands the peak over a window of up to
// two minutes), and every arrival elicits amp response datagrams. Only
// arrival *times* are drawn at build time — the count is fully
// determined here, which is what makes flood volumes an exact oracle
// counter (TestFloodPacketsMatchesBuild pins the two against each
// other).
func FloodPackets(peakPkts, basePkts int, durSec float64, shape uint8, amp int) uint64 {
	if amp < 1 {
		amp = 1
	}
	arrivals := 2 + peakPkts + basePkts
	if shape == ShapeBurst {
		window := 120.0
		if durSec < window {
			window = durSec
		}
		arrivals = 2 + int(float64(peakPkts)*window/60) + basePkts
	}
	return uint64(arrivals) * uint64(amp)
}

// TSAt converts a month offset in seconds to the telescope timestamp
// the event builders would stamp — shared so ledger consumers compute
// bracket-packet times with bit-identical float arithmetic.
func TSAt(offsetSec float64) telescope.Timestamp { return tsAt(offsetSec) }

// recordResearch notes one scheduled sweep.
func (g *Generator) recordResearch(label string, r *researchScan, durSec float64) {
	if g.Ledger == nil {
		return
	}
	g.Ledger.Research = append(g.Ledger.Research, LedgerResearch{
		Label:    label,
		Host:     r.src,
		StartSec: float64(r.start-telescope.TS(telescope.MeasurementStart)) / 1000,
		DurSec:   durSec,
		Records:  r.emit,
		Weight:   r.weight,
	})
}

// recordBot notes one scheduled scanning bot.
func (g *Generator) recordBot(label string, b *botSpec) {
	if g.Ledger == nil {
		return
	}
	g.Ledger.Bots = append(g.Ledger.Bots, LedgerBot{
		Label:   label,
		Src:     b.src,
		Version: b.version,
		Visits:  len(b.visits),
		Payload: b.withload,
	})
}

// recordFlood notes one scheduled flood event.
func (g *Generator) recordFlood(label string, s *floodSpec, org string) {
	if g.Ledger == nil {
		return
	}
	var version wire.Version
	if s.vector == VectorQUIC {
		version = s.version
	}
	amp := s.amp
	if amp < 1 {
		amp = 1
	}
	g.Ledger.Floods = append(g.Ledger.Floods, LedgerFlood{
		Label:          label,
		Vector:         s.vector,
		Victim:         s.victim,
		Org:            org,
		Version:        version,
		StartSec:       s.startSec,
		DurSec:         s.durSec,
		PeakPkts:       s.peakPkts,
		BasePkts:       s.basePkts,
		Shape:          s.shape,
		Amp:            amp,
		RetryMitigated: s.retryMitigated,
		NAddrs:         s.nAddrs,
		NPorts:         s.nPorts,
		Packets:        FloodPackets(s.peakPkts, s.basePkts, s.durSec, s.shape, s.amp),
	})
}

// recordMisconfig notes one scheduled misconfigured responder.
func (g *Generator) recordMisconfig(label string, m *misconfigSpec, startSec float64) {
	if g.Ledger == nil {
		return
	}
	g.Ledger.Misconfig = append(g.Ledger.Misconfig, LedgerMisconfig{
		Label:    label,
		Src:      m.src,
		Version:  m.version,
		Visits:   len(m.visits),
		StartSec: startSec,
	})
}
