// Command telescoped is a live miniature telescope: it binds a UDP
// socket and classifies every arriving datagram with the full QUIC
// dissector, printing one line per packet — the same pipeline the
// simulation feeds, attached to a real socket.
//
// Point any QUIC client at it (or run cmd/quicsand's generated trace
// through it) to watch the classification logic work on live traffic.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"

	"quicsand/internal/dissect"
	"quicsand/internal/wire"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:8443", "UDP address to observe")
	flag.Parse()

	pc, err := net.ListenPacket("udp", *listen)
	if err != nil {
		fmt.Fprintln(os.Stderr, "telescoped:", err)
		os.Exit(1)
	}
	defer pc.Close()
	fmt.Printf("telescoped: observing %s (ctrl-c to stop)\n", pc.LocalAddr())

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt)
	go func() {
		<-stop
		pc.Close()
	}()

	d := dissect.NewDissector()
	buf := make([]byte, 65535)
	for {
		n, addr, err := pc.ReadFrom(buf)
		if err != nil {
			return
		}
		r, err := d.Dissect(buf[:n])
		if err != nil {
			fmt.Printf("%-21s %5dB  not QUIC\n", addr, n)
			continue
		}
		for _, pi := range r.Packets {
			line := fmt.Sprintf("%-21s %5dB  %-18s", addr, n, pi.Type)
			if pi.Type != wire.PacketTypeOneRTT {
				line += fmt.Sprintf(" %-14s scid=%s dcid=%s", pi.Version, pi.SCID, pi.DCID)
			}
			if pi.HasClientHello {
				line += fmt.Sprintf(" ClientHello sni=%q", pi.SNI)
			} else if pi.Type == wire.PacketTypeInitial && !pi.Decrypted {
				line += " (undecryptable: backscatter-shaped)"
			}
			fmt.Println(line)
		}
	}
}
