package main

import (
	"fmt"
	"io"
	"net"
	"os"
	"sync"
	"time"

	"quicsand"
	"quicsand/internal/capture"
	"quicsand/internal/detect"
	"quicsand/internal/engine"
	"quicsand/internal/netmodel"
	"quicsand/internal/telemetry"
)

// serveDaemon is the -window serve loop: the socket reader maps every
// datagram into the telescope packet model and offers it to the
// incremental pipeline; a ticker freezes checkpoints without stopping
// ingest, draining alerts and (re)writing the checkpoint image; socket
// close drains the stream and emits the final checkpoint.
//
// The received destination is rewritten to the telescope prefix base
// on UDP/443 before Offer — the daemon observes one socket, which
// stands in for the whole /9 — and the -record sink captures the
// MAPPED packet (via the streamer's trace hook, in offer order), so a
// recorded capture replays to bit-identical daemon state.
func serveDaemon(opts serveOpts, pc net.PacketConn, out, diag io.Writer) error {
	if opts.traceOut != "" {
		return fmt.Errorf("-trace-out is not supported with -window (the streaming pipeline has no stage timeline)")
	}
	dcfg := detect.Default()
	if opts.detectConfig != "" {
		c, err := detect.LoadConfigFile(opts.detectConfig)
		if err != nil {
			return err
		}
		dcfg = c
	}
	dcfg.Window = opts.window
	if err := dcfg.Validate(); err != nil {
		return err
	}

	n := engine.Config{Workers: opts.workers}.ResolveWorkers()
	live := telemetry.NewLive(n)
	var srv *telemetry.Server
	if opts.metrics != "" {
		s, err := telemetry.NewServer(opts.metrics, live)
		if err != nil {
			return fmt.Errorf("metrics endpoint: %w", err)
		}
		defer s.Close()
		srv = s
		fmt.Fprintf(diag, "telescoped: metrics on http://%s/metrics (pprof on /debug/pprof)\n", s.Addr())
	}
	var hb *telemetry.Heartbeat
	if opts.heartbeat > 0 {
		hb = telemetry.StartHeartbeat(live, srv, opts.heartbeat, func(format string, args ...any) {
			fmt.Fprintf(diag, "telescoped: "+format+"\n", args...)
		})
		defer hb.Stop()
	}

	var alertW io.Writer
	var alertFile *os.File
	switch opts.alerts {
	case "":
	case "-":
		alertW = out
	default:
		f, err := os.Create(opts.alerts)
		if err != nil {
			return fmt.Errorf("alerts: %w", err)
		}
		alertFile = f
		alertW = f
	}

	var rec capture.Sink
	var recFile *os.File
	if opts.record != "" {
		f, err := os.Create(opts.record)
		if err != nil {
			return fmt.Errorf("record: %w", err)
		}
		recFile = f
		rec = capture.NewSink(f, capture.FormatForPath(opts.record))
	}

	cfg := quicsand.StreamConfig{
		Config: quicsand.Config{
			Seed:    opts.seed,
			Scale:   opts.scale,
			Workers: opts.workers,
			Live:    live,
		},
		Detect:            &dcfg,
		MaxActiveSessions: opts.memBudget,
	}
	if rec != nil {
		cfg.Trace = rec
	}
	s, err := quicsand.NewStreamer(cfg)
	if err != nil {
		if recFile != nil {
			recFile.Close()
		}
		if alertFile != nil {
			alertFile.Close()
		}
		return err
	}
	fmt.Fprintf(diag, "telescoped: daemon mode: window=%s workers=%d checkpoint-every=%s\n",
		opts.window, n, opts.ckptEvery)

	st := &daemonState{opts: opts, alertW: alertW, start: time.Now()}

	// Checkpoint ticker. It is joined before the final drain below, so
	// st is only ever touched by one goroutine at a time.
	stopTick := make(chan struct{})
	var twg sync.WaitGroup
	if opts.ckptEvery > 0 {
		tick := time.NewTicker(opts.ckptEvery)
		twg.Add(1)
		go func() {
			defer twg.Done()
			defer tick.Stop()
			for {
				select {
				case <-tick.C:
					st.emit(s.Checkpoint(), diag)
				case <-stopTick:
					return
				}
			}
		}()
	}

	// Read loop on this goroutine: map each datagram onto the telescope
	// model and offer it. The streamer copies the packet before any
	// cross-shard dispatch, so the payload copy here is the only one the
	// trace sink and single-worker path need.
	buf := make([]byte, 65535)
	var skipped uint64
	for {
		sz, addr, err := pc.ReadFrom(buf)
		if err != nil {
			break // socket closed: the signal handler's graceful drain
		}
		p := recordPacket(addr, netmodel.TelescopePrefix.Base, 443, append([]byte(nil), buf[:sz]...))
		if p == nil {
			skipped++ // non-IPv4 remote: unrepresentable in the model
			continue
		}
		s.Offer(p)
	}
	close(stopTick)
	twg.Wait()
	if hb != nil {
		hb.Stop()
	}

	final := s.Close()
	st.emit(final, diag)
	a := final.Analysis()

	snap := a.Telemetry
	snap.ShardPackets = live.ShardCounts()
	if rec != nil {
		if err := rec.Flush(); err != nil {
			fmt.Fprintf(diag, "telescoped: record %s: %v\n", opts.record, err)
		}
		if err := recFile.Close(); err != nil {
			return fmt.Errorf("record %s: %w", opts.record, err)
		}
		snap.Trace.Written = rec.Count()
		snap.Trace.Dropped = rec.Dropped() + skipped
		fmt.Fprintf(diag, "telescoped: record drained: %d records written to %s, %d dropped\n",
			rec.Count(), opts.record, snap.Trace.Dropped)
	}
	if alertFile != nil {
		if err := alertFile.Close(); err != nil {
			return fmt.Errorf("alerts %s: %w", opts.alerts, err)
		}
	}
	if srv != nil {
		srv.SetFinal(snap)
	}
	wall := time.Since(st.start)
	fmt.Fprintf(out, "telescoped: daemon drained: %d captured packets, %d alerts, %d checkpoints\n",
		final.Position(), st.alertsTotal, len(st.snapshots))
	fmt.Fprint(out, snap.Text())

	if opts.manifest != "" {
		m := &telemetry.Manifest{
			Command: "telescoped",
			Config: map[string]any{
				"listen":           pc.LocalAddr().String(),
				"workers":          n,
				"record":           opts.record,
				"window":           opts.window.String(),
				"checkpoint_every": opts.ckptEvery.String(),
				"checkpoint":       opts.checkpoint,
				"alerts":           opts.alerts,
				"mem_budget":       opts.memBudget,
				"seed":             opts.seed,
				"scale":            opts.scale,
			},
			Workers:       n,
			WallNS:        wall.Nanoseconds(),
			PacketsPerSec: float64(final.Position()) / wall.Seconds(),
			ShardPackets:  snap.ShardPackets,
			ShardSkew:     snap.Skew(),
			Telemetry:     snap,
			Snapshots:     st.snapshots,
		}
		if err := m.WriteFile(opts.manifest); err != nil {
			return fmt.Errorf("manifest: %w", err)
		}
		fmt.Fprintf(diag, "telescoped: manifest written to %s\n", opts.manifest)
	}
	return nil
}

// daemonState accumulates per-checkpoint artifacts: the alert stream,
// the rewritten checkpoint image, and the manifest snapshot list. It is
// only touched by the ticker goroutine, then (after the join) by the
// final drain.
type daemonState struct {
	opts        serveOpts
	alertW      io.Writer
	start       time.Time
	alertsTotal int
	snapshots   []telemetry.StreamSnapshot
}

// emit publishes one frozen checkpoint: alerts appended as JSON lines,
// the serialized image atomically swapped into place, and a snapshot
// row recorded for the manifest. Artifact write failures are logged and
// the daemon keeps serving — losing a checkpoint must not stop capture.
func (d *daemonState) emit(ck *quicsand.StreamCheckpoint, diag io.Writer) {
	if d.alertW != nil && len(ck.Alerts) > 0 {
		if err := detect.WriteAlerts(d.alertW, ck.Alerts); err != nil {
			fmt.Fprintf(diag, "telescoped: alerts: %v\n", err)
		}
	}
	d.alertsTotal += len(ck.Alerts)
	if d.opts.checkpoint != "" {
		if err := writeFileAtomic(d.opts.checkpoint, ck.Encode()); err != nil {
			fmt.Fprintf(diag, "telescoped: checkpoint %s: %v\n", d.opts.checkpoint, err)
		}
	}
	a := ck.Analysis()
	d.snapshots = append(d.snapshots, telemetry.StreamSnapshot{
		ElapsedNS:      time.Since(d.start).Nanoseconds(),
		Position:       ck.Position(),
		Alerts:         len(ck.Alerts),
		AlertsTotal:    d.alertsTotal,
		QUICSessions:   len(a.QUICSessions),
		TelescopeTotal: a.Telescope.Total,
		Checkpoint:     d.opts.checkpoint,
	})
}

// writeFileAtomic writes data next to path and renames it into place,
// so a crashed daemon never leaves a torn checkpoint image behind.
func writeFileAtomic(path string, data []byte) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}
