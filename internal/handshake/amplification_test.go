package handshake

import (
	"testing"

	"quicsand/internal/tlsmini"
	"quicsand/internal/wire"
)

// TestAmplificationFactorBounded asserts the §3 property QUIC was
// designed around: the unvalidated first flight never exceeds 3× the
// client's bytes, even with oversized certificate chains.
func TestAmplificationFactorBounded(t *testing.T) {
	for _, padding := range []int{0, 600, 2500, 6000} {
		id, err := tlsmini.GenerateSelfSigned("amp.test", padding)
		if err != nil {
			t.Fatal(err)
		}
		client, err := NewClient(ClientConfig{ServerName: "amp.test"})
		if err != nil {
			t.Fatal(err)
		}
		first, err := client.Start()
		if err != nil {
			t.Fatal(err)
		}
		h, _ := wire.ParseLongHeader(first)
		server, err := NewServerConn(ServerConfig{Identity: id}, wire.Version1, h.DstConnID, h.SrcConnID)
		if err != nil {
			t.Fatal(err)
		}
		flight, err := server.HandleDatagram(append([]byte(nil), first...))
		if err != nil {
			t.Fatal(err)
		}
		sent := 0
		for _, d := range flight {
			sent += len(d)
		}
		if factor := float64(sent) / float64(len(first)); factor > 3.0 {
			t.Errorf("padding %d: amplification factor %.2f exceeds 3×", padding, factor)
		}
	}
}

// TestDeferredFlightFlushesAfterValidation: with a huge certificate,
// part of the server flight is withheld until the client proves its
// address, then delivered — and the handshake still completes.
func TestDeferredFlightFlushesAfterValidation(t *testing.T) {
	id, err := tlsmini.GenerateSelfSigned("big.test", 6000)
	if err != nil {
		t.Fatal(err)
	}
	client, err := NewClient(ClientConfig{ServerName: "big.test"})
	if err != nil {
		t.Fatal(err)
	}
	first, err := client.Start()
	if err != nil {
		t.Fatal(err)
	}
	h, _ := wire.ParseLongHeader(first)
	server, err := NewServerConn(ServerConfig{Identity: id}, wire.Version1, h.DstConnID, h.SrcConnID)
	if err != nil {
		t.Fatal(err)
	}
	flight, err := server.HandleDatagram(append([]byte(nil), first...))
	if err != nil {
		t.Fatal(err)
	}
	if len(server.deferred) == 0 {
		t.Fatal("big-certificate flight should be partially deferred")
	}

	// Pump rounds: the client acks/answers what it has; each client
	// Handshake datagram validates the address and releases more.
	toServer := [][]byte{}
	toClient := flight
	for round := 0; round < 12 && !client.Done(); round++ {
		toServer = toServer[:0]
		for _, d := range toClient {
			out, err := client.HandleDatagram(d)
			if err != nil {
				t.Fatal(err)
			}
			toServer = append(toServer, out...)
		}
		toClient = toClient[:0]
		if len(toServer) == 0 && !client.Done() {
			// Client is stalled waiting for deferred data; a real
			// client retransmits ACKs — model with an empty-ACK
			// Handshake datagram via a PING exchange from the server
			// side (the deferred flush path).
			pings, err := server.KeepAlivePings(1)
			if err != nil {
				t.Fatal(err)
			}
			toClient = append(toClient, pings...)
			continue
		}
		for _, d := range toServer {
			out, err := server.HandleDatagram(d)
			if err != nil {
				t.Fatal(err)
			}
			toClient = append(toClient, out...)
		}
	}
	if !client.Done() {
		t.Fatalf("handshake with deferred flight did not complete: %v", client.State())
	}
	if !server.Done() {
		t.Fatalf("server state %v", server.State())
	}
}
