package scenario

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
)

// Load parses a scenario spec — JSON (first non-space byte '{') or the
// TOML subset (toml.go) — and validates it. Unknown fields are errors
// in both formats: a typoed knob must fail loudly, not silently keep
// its default. Load never panics on malformed input (FuzzLoad).
func Load(data []byte) (*Scenario, error) {
	trimmed := bytes.TrimLeft(data, " \t\r\n")
	var doc []byte
	if len(trimmed) > 0 && trimmed[0] == '{' {
		doc = trimmed
	} else {
		tree, err := parseTOML(data)
		if err != nil {
			return nil, fmt.Errorf("scenario: %w", err)
		}
		doc, err = json.Marshal(tree)
		if err != nil { // the parser emits only finite JSON-safe values
			return nil, fmt.Errorf("scenario: %w", err)
		}
	}

	dec := json.NewDecoder(bytes.NewReader(doc))
	dec.DisallowUnknownFields()
	var sc Scenario
	if err := dec.Decode(&sc); err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	var tail any
	if err := dec.Decode(&tail); !errors.Is(err, io.EOF) {
		return nil, fmt.Errorf("scenario: trailing data after spec document")
	}
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	return &sc, nil
}

// LoadFile reads and parses a spec file (.json or .toml; the format is
// sniffed from the content, so the extension is advisory).
func LoadFile(path string) (*Scenario, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	sc, err := Load(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return sc, nil
}
