// Package stats provides the small statistical toolkit the analyses
// share: empirical CDFs, percentiles and histograms.
package stats

import (
	"math"
	"sort"
)

// ECDF is an empirical cumulative distribution over float64 samples.
type ECDF struct {
	sorted []float64
}

// NewECDF copies and sorts the samples.
func NewECDF(samples []float64) *ECDF {
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	return &ECDF{sorted: s}
}

// N returns the sample count.
func (e *ECDF) N() int { return len(e.sorted) }

// At returns P(X ≤ x).
func (e *ECDF) At(x float64) float64 {
	if len(e.sorted) == 0 {
		return 0
	}
	i := sort.SearchFloat64s(e.sorted, math.Nextafter(x, math.Inf(1)))
	return float64(i) / float64(len(e.sorted))
}

// Quantile returns the q-th quantile (0 ≤ q ≤ 1) using the nearest-rank
// method.
func (e *ECDF) Quantile(q float64) float64 {
	if len(e.sorted) == 0 {
		return math.NaN()
	}
	if q <= 0 {
		return e.sorted[0]
	}
	if q >= 1 {
		return e.sorted[len(e.sorted)-1]
	}
	rank := int(math.Ceil(q*float64(len(e.sorted)))) - 1
	if rank < 0 {
		rank = 0
	}
	return e.sorted[rank]
}

// Median returns the 0.5 quantile.
func (e *ECDF) Median() float64 { return e.Quantile(0.5) }

// Min and Max return the sample extremes (NaN when empty).
func (e *ECDF) Min() float64 {
	if len(e.sorted) == 0 {
		return math.NaN()
	}
	return e.sorted[0]
}

// Max returns the largest sample (NaN when empty).
func (e *ECDF) Max() float64 {
	if len(e.sorted) == 0 {
		return math.NaN()
	}
	return e.sorted[len(e.sorted)-1]
}

// Mean returns the arithmetic mean (NaN when empty).
func (e *ECDF) Mean() float64 {
	if len(e.sorted) == 0 {
		return math.NaN()
	}
	var sum float64
	for _, v := range e.sorted {
		sum += v
	}
	return sum / float64(len(e.sorted))
}

// Points samples the CDF at n log-spaced x positions between min and
// max, for plotting. Returns (x, y) pairs.
func (e *ECDF) Points(n int) (xs, ys []float64) {
	if len(e.sorted) == 0 || n <= 0 {
		return nil, nil
	}
	lo, hi := e.sorted[0], e.sorted[len(e.sorted)-1]
	if lo <= 0 {
		lo = math.SmallestNonzeroFloat64
	}
	if hi <= lo {
		return []float64{hi}, []float64{1}
	}
	logLo, logHi := math.Log10(lo), math.Log10(hi)
	for i := 0; i < n; i++ {
		x := math.Pow(10, logLo+(logHi-logLo)*float64(i)/float64(n-1))
		xs = append(xs, x)
		ys = append(ys, e.At(x))
	}
	return xs, ys
}

// Percentile computes the p-th percentile (0–100) of unsorted samples.
func Percentile(samples []float64, p float64) float64 {
	return NewECDF(samples).Quantile(p / 100)
}

// Median computes the median of unsorted samples.
func Median(samples []float64) float64 { return Percentile(samples, 50) }

// Histogram counts samples into fixed-width bins over [lo, hi).
type Histogram struct {
	Lo, Hi float64
	Counts []uint64
	Under  uint64
	Over   uint64
}

// NewHistogram creates a histogram with n bins.
func NewHistogram(lo, hi float64, n int) *Histogram {
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]uint64, n)}
}

// Add records one sample.
func (h *Histogram) Add(v float64) {
	switch {
	case v < h.Lo:
		h.Under++
	case v >= h.Hi:
		h.Over++
	default:
		i := int((v - h.Lo) / (h.Hi - h.Lo) * float64(len(h.Counts)))
		if i >= len(h.Counts) {
			i = len(h.Counts) - 1
		}
		h.Counts[i]++
	}
}

// Total returns all recorded samples including outliers.
func (h *Histogram) Total() uint64 {
	t := h.Under + h.Over
	for _, c := range h.Counts {
		t += c
	}
	return t
}
