package dissect

import (
	"testing"

	"quicsand/internal/handshake"
	"quicsand/internal/wire"
)

// Allocation regression bounds for the dissector's two dominant
// telescope paths. The dissector recycles result storage, headers,
// openers, plaintext and crypto buffers; the only steady-state
// allocations left sit inside TLS message parsing (client initials)
// and the AEAD internals (failed backscatter opens). These tests lock
// the budgets so a refactor cannot quietly reintroduce per-packet
// garbage on the 92 M packet stream.

func TestDissectAllocs(t *testing.T) {
	client, err := handshake.NewClient(handshake.ClientConfig{ServerName: "alloc.test"})
	if err != nil {
		t.Fatal(err)
	}
	initial, err := client.Start()
	if err != nil {
		t.Fatal(err)
	}
	h, err := wire.ParseLongHeader(initial)
	if err != nil {
		t.Fatal(err)
	}
	server, err := handshake.NewServerConn(handshake.ServerConfig{Identity: dissectorIdentity}, wire.Version1, h.DstConnID, h.SrcConnID)
	if err != nil {
		t.Fatal(err)
	}
	flight, err := server.HandleDatagram(append([]byte(nil), initial...))
	if err != nil {
		t.Fatal(err)
	}

	d := NewDissector()
	// Warm up: populate the opener cache and grow the scratch buffers.
	for i := 0; i < 4; i++ {
		if _, err := d.Dissect(initial); err != nil {
			t.Fatal(err)
		}
		if _, err := d.Dissect(flight[0]); err != nil {
			t.Fatal(err)
		}
	}

	// Backscatter (undecryptable server flight): the overwhelmingly
	// dominant payload class. Budget covers only AEAD-internal scratch.
	if avg := testing.AllocsPerRun(200, func() {
		if _, err := d.Dissect(flight[0]); err != nil {
			t.Fatal(err)
		}
	}); avg > 4 {
		t.Errorf("backscatter dissect allocates %.1f/op, budget 4", avg)
	}

	// Client initial with ClientHello extraction: bounded by TLS
	// message parsing, not per-packet dissector state.
	if avg := testing.AllocsPerRun(200, func() {
		if _, err := d.Dissect(initial); err != nil {
			t.Fatal(err)
		}
	}); avg > 16 {
		t.Errorf("client-initial dissect allocates %.1f/op, budget 16", avg)
	}
}
