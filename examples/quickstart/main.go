// Quickstart: build a real QUIC Initial with the handshake client,
// then dissect it the way the telescope does — the two core primitives
// of the library in twenty lines.
package main

import (
	"fmt"
	"log"

	"quicsand/internal/dissect"
	"quicsand/internal/handshake"
	"quicsand/internal/wire"
)

func main() {
	// 1. A real client Initial: ClientHello, Initial keys, header
	//    protection, 1200-byte padding — all per RFC 9000/9001.
	client, err := handshake.NewClient(handshake.ClientConfig{
		Version:    wire.VersionDraft29, // Google's April-2021 deployment
		ServerName: "www.example.org",
	})
	if err != nil {
		log.Fatal(err)
	}
	datagram, err := client.Start()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("client Initial: %d bytes (min %d per RFC 9000 §14.1)\n",
		len(datagram), handshake.MinInitialDatagramSize)

	// 2. Dissect it as a passive observer: the Initial keys derive
	//    from the wire DCID, so scans are transparent to a telescope.
	d := dissect.NewDissector()
	result, err := d.Dissect(datagram)
	if err != nil {
		log.Fatal(err)
	}
	info := result.First()
	fmt.Printf("dissected:      %s %s\n", info.Type, info.Version)
	fmt.Printf("connection IDs: dcid=%s scid=%s\n", info.DCID, info.SCID)
	fmt.Printf("decrypted:      %v (ClientHello=%v, SNI=%q)\n",
		info.Decrypted, info.HasClientHello, info.SNI)
	fmt.Printf("frames:         %v\n", info.FrameTypes)
}
