package tlsmini

import "fmt"

// ClientHello models the fields of a TLS 1.3 ClientHello that the QUIC
// handshake and the telescope dissector care about.
type ClientHello struct {
	Random       [32]byte
	SessionID    []byte
	CipherSuites []uint16
	ServerName   string
	ALPN         []string
	// KeyShareX25519 is the client's 32-byte x25519 public key.
	KeyShareX25519 []byte
	// TransportParams carries the QUIC transport parameters extension
	// verbatim (contents are opaque to TLS).
	TransportParams []byte
	// DraftParams selects the pre-RFC transport-parameter codepoint
	// (0xffa5) used by draft-27/-29 deployments.
	DraftParams bool

	// tpBuf recycles the TransportParams backing array across
	// ParseClientHelloInto calls while keeping the nil-when-absent
	// contract on TransportParams itself.
	tpBuf []byte
}

// Marshal serializes the ClientHello including its handshake header.
func (ch *ClientHello) Marshal() []byte {
	var b []byte
	b = appendU16(b, VersionTLS12) // legacy_version
	b = append(b, ch.Random[:]...)
	b = append(b, byte(len(ch.SessionID)))
	b = append(b, ch.SessionID...)

	suites := ch.CipherSuites
	if len(suites) == 0 {
		suites = []uint16{SuiteAES128GCMSHA256}
	}
	b = appendU16(b, uint16(2*len(suites)))
	for _, s := range suites {
		b = appendU16(b, s)
	}
	b = append(b, 1, 0) // legacy_compression_methods: null

	var ext []byte
	if ch.ServerName != "" {
		var sni []byte
		sni = appendU16(sni, uint16(3+len(ch.ServerName))) // server_name_list
		sni = append(sni, 0)                               // host_name
		sni = appendU16(sni, uint16(len(ch.ServerName)))
		sni = append(sni, ch.ServerName...)
		ext = appendExtension(ext, extServerName, sni)
	}
	if len(ch.ALPN) > 0 {
		var alpn []byte
		var list []byte
		for _, p := range ch.ALPN {
			list = append(list, byte(len(p)))
			list = append(list, p...)
		}
		alpn = appendU16(alpn, uint16(len(list)))
		alpn = append(alpn, list...)
		ext = appendExtension(ext, extALPN, alpn)
	}
	// supported_groups
	ext = appendExtension(ext, extSupportedGroups, []byte{0, 2, byte(GroupX25519 >> 8), byte(GroupX25519)})
	// signature_algorithms
	ext = appendExtension(ext, extSignatureAlgorithms, []byte{0, 2, byte(SchemeECDSAP256 >> 8), byte(SchemeECDSAP256 & 0xff)})
	// supported_versions
	ext = appendExtension(ext, extSupportedVersions, []byte{2, byte(VersionTLS13 >> 8), byte(VersionTLS13 & 0xff)})
	// key_share
	if len(ch.KeyShareX25519) > 0 {
		var ks []byte
		ks = appendU16(ks, uint16(4+len(ch.KeyShareX25519)))
		ks = appendU16(ks, GroupX25519)
		ks = appendU16(ks, uint16(len(ch.KeyShareX25519)))
		ks = append(ks, ch.KeyShareX25519...)
		ext = appendExtension(ext, extKeyShare, ks)
	}
	if ch.TransportParams != nil {
		cp := extQUICTransportParams
		if ch.DraftParams {
			cp = extQUICTransportParamsDraft
		}
		ext = appendExtension(ext, cp, ch.TransportParams)
	}

	b = appendU16(b, uint16(len(ext)))
	b = append(b, ext...)
	return wrapHandshake(TypeClientHello, b)
}

func appendExtension(dst []byte, typ uint16, body []byte) []byte {
	dst = appendU16(dst, typ)
	dst = appendU16(dst, uint16(len(body)))
	return append(dst, body...)
}

// setString replaces *dst with the bytes' string value, allocating
// only when the value actually changes. The telescope's scan traffic
// interns a handful of template payloads, so repeated parses of the
// same hello keep returning the same string with zero allocations
// (string(b) inside a comparison does not allocate).
func setString(dst *string, b []byte) {
	if *dst != string(b) {
		*dst = string(b)
	}
}

// appendStringReuse grows a string slice by one entry, reusing the
// retired entry's value when it already matches (the ALPN analogue of
// setString).
func appendStringReuse(dst []string, b []byte) []string {
	if len(dst) < cap(dst) {
		dst = dst[:len(dst)+1]
		setString(&dst[len(dst)-1], b)
		return dst
	}
	return append(dst, string(b))
}

// ParseClientHelloInto parses a ClientHello body into ch, reusing its
// backing storage — the dissector's hot path parses one of a few
// interned scan templates per packet, which this makes allocation-free
// in steady state. Fields absent from the hello are reset. On error ch
// is left partially filled and must not be read.
func ParseClientHelloInto(ch *ClientHello, body []byte) error {
	ch.SessionID = ch.SessionID[:0]
	ch.CipherSuites = ch.CipherSuites[:0]
	ch.ALPN = ch.ALPN[:0]
	ch.KeyShareX25519 = ch.KeyShareX25519[:0]
	if ch.TransportParams != nil {
		ch.tpBuf = ch.TransportParams[:0]
		ch.TransportParams = nil
	}
	ch.DraftParams = false
	// ServerName is cleared only when this hello carries no SNI: the
	// retained value is what lets setString skip the string allocation
	// when consecutive parses see the same name (the interned-template
	// steady state).
	sawSNI := false

	c := cursor{b: body}
	if v := c.u16(); v != VersionTLS12 && c.err == nil {
		return fmt.Errorf("tlsmini: legacy_version %#04x: %w", v, ErrMalformed)
	}
	copy(ch.Random[:], c.bytes(32))
	ch.SessionID = append(ch.SessionID, c.bytes(int(c.u8()))...)
	nSuites := int(c.u16())
	if nSuites%2 != 0 {
		return ErrMalformed
	}
	for i := 0; i < nSuites/2; i++ {
		ch.CipherSuites = append(ch.CipherSuites, c.u16())
	}
	c.bytes(int(c.u8())) // compression methods
	extLen := int(c.u16())
	if c.err != nil {
		return c.err
	}
	ext := cursor{b: c.bytes(extLen)}
	if c.err != nil {
		return c.err
	}
	for len(ext.b) > 0 && ext.err == nil {
		typ := ext.u16()
		body := ext.bytes(int(ext.u16()))
		if ext.err != nil {
			return ext.err
		}
		switch typ {
		case extServerName:
			e := cursor{b: body}
			e.u16() // list length
			if e.u8() == 0 {
				setString(&ch.ServerName, e.bytes(int(e.u16())))
				sawSNI = true
			}
			if e.err != nil {
				return e.err
			}
		case extALPN:
			e := cursor{b: body}
			list := cursor{b: e.bytes(int(e.u16()))}
			if e.err != nil {
				return e.err
			}
			for len(list.b) > 0 && list.err == nil {
				ch.ALPN = appendStringReuse(ch.ALPN, list.bytes(int(list.u8())))
			}
			if list.err != nil {
				return list.err
			}
		case extKeyShare:
			e := cursor{b: body}
			shares := cursor{b: e.bytes(int(e.u16()))}
			if e.err != nil {
				return e.err
			}
			for len(shares.b) > 0 && shares.err == nil {
				group := shares.u16()
				key := shares.bytes(int(shares.u16()))
				if group == GroupX25519 {
					ch.KeyShareX25519 = append(ch.KeyShareX25519[:0], key...)
				}
			}
			if shares.err != nil {
				return shares.err
			}
		case extQUICTransportParams:
			ch.TransportParams = append(ch.tpBuf, body...)
		case extQUICTransportParamsDraft:
			ch.TransportParams = append(ch.tpBuf, body...)
			ch.DraftParams = true
		}
	}
	if !sawSNI {
		ch.ServerName = ""
	}
	return ext.err
}

// ParseClientHello parses the body of a ClientHello message (without
// the 4-byte handshake header) into a fresh struct. Hot paths that
// parse repeatedly should use ParseClientHelloInto with a reused
// ClientHello instead.
func ParseClientHello(body []byte) (*ClientHello, error) {
	ch := &ClientHello{}
	if err := ParseClientHelloInto(ch, body); err != nil {
		return nil, err
	}
	return ch, nil
}

// ServerHello models a TLS 1.3 ServerHello.
type ServerHello struct {
	Random         [32]byte
	SessionIDEcho  []byte
	CipherSuite    uint16
	KeyShareX25519 []byte
}

// Marshal serializes the ServerHello including its handshake header.
func (sh *ServerHello) Marshal() []byte {
	var b []byte
	b = appendU16(b, VersionTLS12)
	b = append(b, sh.Random[:]...)
	b = append(b, byte(len(sh.SessionIDEcho)))
	b = append(b, sh.SessionIDEcho...)
	suite := sh.CipherSuite
	if suite == 0 {
		suite = SuiteAES128GCMSHA256
	}
	b = appendU16(b, suite)
	b = append(b, 0) // compression: null

	var ext []byte
	ext = appendExtension(ext, extSupportedVersions, []byte{byte(VersionTLS13 >> 8), byte(VersionTLS13 & 0xff)})
	var ks []byte
	ks = appendU16(ks, GroupX25519)
	ks = appendU16(ks, uint16(len(sh.KeyShareX25519)))
	ks = append(ks, sh.KeyShareX25519...)
	ext = appendExtension(ext, extKeyShare, ks)

	b = appendU16(b, uint16(len(ext)))
	b = append(b, ext...)
	return wrapHandshake(TypeServerHello, b)
}

// ParseServerHello parses the body of a ServerHello message.
func ParseServerHello(body []byte) (*ServerHello, error) {
	c := &cursor{b: body}
	sh := &ServerHello{}
	c.u16() // legacy version
	copy(sh.Random[:], c.bytes(32))
	sh.SessionIDEcho = append([]byte(nil), c.bytes(int(c.u8()))...)
	sh.CipherSuite = c.u16()
	c.u8() // compression
	extLen := int(c.u16())
	if c.err != nil {
		return nil, c.err
	}
	ext := &cursor{b: c.bytes(extLen)}
	if c.err != nil {
		return nil, c.err
	}
	for len(ext.b) > 0 && ext.err == nil {
		typ := ext.u16()
		body := ext.bytes(int(ext.u16()))
		if ext.err != nil {
			return nil, ext.err
		}
		if typ == extKeyShare {
			e := &cursor{b: body}
			group := e.u16()
			key := e.bytes(int(e.u16()))
			if e.err != nil {
				return nil, e.err
			}
			if group == GroupX25519 {
				sh.KeyShareX25519 = append([]byte(nil), key...)
			}
		}
	}
	if ext.err != nil {
		return nil, ext.err
	}
	return sh, nil
}
