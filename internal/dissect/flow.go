package dissect

import (
	"fmt"

	"quicsand/internal/netmodel"
	"quicsand/internal/telescope"
)

// Endpoint is a hashable (address, port) pair, following gopacket's
// Endpoint idiom: usable as a map key and comparable.
type Endpoint struct {
	Addr netmodel.Addr
	Port uint16
}

// String implements fmt.Stringer.
func (e Endpoint) String() string { return fmt.Sprintf("%s:%d", e.Addr, e.Port) }

// LessThan orders endpoints (for canonical flow keys).
func (e Endpoint) LessThan(o Endpoint) bool {
	if e.Addr != o.Addr {
		return e.Addr < o.Addr
	}
	return e.Port < o.Port
}

// Flow is a directed (src, dst) endpoint pair.
type Flow struct {
	Src, Dst Endpoint
}

// FlowOf extracts the transport flow of a packet.
func FlowOf(p *telescope.Packet) Flow {
	return Flow{
		Src: Endpoint{Addr: p.Src, Port: p.SrcPort},
		Dst: Endpoint{Addr: p.Dst, Port: p.DstPort},
	}
}

// Reverse returns the opposite direction.
func (f Flow) Reverse() Flow { return Flow{Src: f.Dst, Dst: f.Src} }

// String implements fmt.Stringer.
func (f Flow) String() string { return f.Src.String() + "->" + f.Dst.String() }

// FastHash returns a direction-independent hash: A→B and B→A collide,
// the property gopacket guarantees for flow load-balancing.
func (f Flow) FastHash() uint64 {
	a, b := f.Src, f.Dst
	if b.LessThan(a) {
		a, b = b, a
	}
	h := uint64(a.Addr)<<16 | uint64(a.Port)
	h = h*0x9e3779b97f4a7c15 + (uint64(b.Addr)<<16 | uint64(b.Port))
	h ^= h >> 29
	h *= 0xbf58476d1ce4e5b9
	return h ^ h>>32
}
