package quicsand

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"quicsand/internal/correlate"
	"quicsand/internal/dosdetect"
	"quicsand/internal/netmodel"
	"quicsand/internal/report"
	"quicsand/internal/scenario"
	"quicsand/internal/stats"
	"quicsand/internal/telescope"
	"quicsand/internal/wire"
)

// headlineStats are the §5.1 aggregates Headline and HeadlineJSON
// share — computed in one place so the text and JSON views cannot
// drift apart (the replay round-trip check diffs the JSON form).
type headlineStats struct {
	total, research uint64
	reqPk, respPk   int
}

func (a *Analysis) headlineStats() headlineStats {
	var h headlineStats
	h.research = a.HourlySource.TotalOf("TUM-Scans") + a.HourlySource.TotalOf("RWTH-Scans")
	h.total = h.research + a.HourlySource.TotalOf("Other")
	for _, s := range a.RequestSessions {
		h.reqPk += s.Packets
	}
	for _, s := range a.ResponseSessions {
		h.respPk += s.Packets
	}
	return h
}

// Headline renders the §5.1 overview numbers.
func (a *Analysis) Headline() string {
	var b strings.Builder
	if sc := a.Config.Scenario; sc != nil {
		fmt.Fprintf(&b, "scenario:                     %s\n", sc.Name)
	}
	hs := a.headlineStats()
	total, research, reqPk, respPk := hs.total, hs.research, hs.reqPk, hs.respPk
	fmt.Fprintf(&b, "QUIC packets captured:        %s\n", report.Count(total))
	if total > 0 {
		fmt.Fprintf(&b, "research scanner share:       %s (paper: 98.5%%)\n", report.Percent(float64(research)/float64(total)*100))
	}
	san := reqPk + respPk
	if san > 0 {
		fmt.Fprintf(&b, "sanitized requests/responses: %s / %s (paper: 15%% / 85%%)\n",
			report.Percent(float64(reqPk)/float64(san)*100), report.Percent(float64(respPk)/float64(san)*100))
	}
	fmt.Fprintf(&b, "request-only sessions:        %s (paper: 18k, avg 11 pkts)\n", report.Count(uint64(len(a.RequestSessions))))
	if n := len(a.RequestSessions); n > 0 {
		fmt.Fprintf(&b, "  avg packets/session:        %.1f\n", float64(reqPk)/float64(n))
	}
	fmt.Fprintf(&b, "response-only sessions:       %s (paper: 26k, avg 44 pkts)\n", report.Count(uint64(len(a.ResponseSessions))))
	if n := len(a.ResponseSessions); n > 0 {
		fmt.Fprintf(&b, "  avg packets/session:        %.1f\n", float64(respPk)/float64(n))
	}
	fmt.Fprintf(&b, "QUIC attacks (Moore w=1):     %s (paper: 2905, 11%% of responses)\n", report.Count(uint64(len(a.QUICDetector.Attacks))))
	if a.QUICDetector.Inspected > 0 {
		fmt.Fprintf(&b, "  share of response sessions: %s\n",
			report.Percent(float64(len(a.QUICDetector.Attacks))/float64(a.QUICDetector.Inspected)*100))
	}
	fmt.Fprintf(&b, "unique victims:               %s (paper: 394)\n", report.Count(uint64(len(a.Victims()))))
	fmt.Fprintf(&b, "TCP/ICMP attacks:             %s (paper: 282k)\n", report.Count(uint64(len(a.CommonDetector.Attacks))))
	fmt.Fprintf(&b, "victims in active-scan set:   %s (paper: 98%%)\n", report.Percent(a.Census.KnownShare(a.Victims())))
	fmt.Fprintf(&b, "attacks on Google/Facebook:   %s / %s (paper: 58%% / 25%%)\n",
		report.Percent(a.OrgShare("Google")), report.Percent(a.OrgShare("Facebook")))
	return b.String()
}

// HeadlineJSON renders the §5.1 headline numbers as one JSON object —
// the machine-diffable form the replay round-trip check compares
// (scripts/replay_roundtrip.sh). Field order and float rendering are
// deterministic, so equal analyses produce byte-equal documents.
func (a *Analysis) HeadlineJSON() string {
	hs := a.headlineStats()
	scName := ""
	if a.Config.Scenario != nil {
		scName = a.Config.Scenario.Name
	}
	// Replay provenance: present only on replayed runs. The ingest
	// fields sit before every always-present field so stripping their
	// lines yields a document byte-identical to the live run's —
	// scripts/replay_roundtrip.sh and expectSameAnalysis rely on this.
	var ingestFormat string
	var ingestRecords uint64
	if a.Telemetry != nil {
		ingestFormat = a.Telemetry.Ingest.Format
		ingestRecords = a.Telemetry.Ingest.Records
	}
	doc := struct {
		Scenario         string `json:"scenario,omitempty"`
		IngestFormat     string `json:"ingest_format,omitempty"`
		IngestRecords    uint64 `json:"ingest_records,omitempty"`
		TelescopePackets uint64 `json:"telescope_packets"`
		QUICPackets      uint64 `json:"quic_packets"`
		ResearchPackets  uint64 `json:"research_packets"`
		NonQUIC          uint64 `json:"non_quic"`
		RequestSessions  int    `json:"request_sessions"`
		ResponseSessions int    `json:"response_sessions"`
		RequestPackets   int    `json:"request_packets"`
		ResponsePackets  int    `json:"response_packets"`
		QUICAttacks      int    `json:"quic_attacks"`
		UniqueVictims    int    `json:"unique_victims"`
		CommonAttacks    int    `json:"common_attacks"`
		SweepSessions5m  uint64 `json:"sweep_sessions_5m"`
	}{
		Scenario:         scName,
		IngestFormat:     ingestFormat,
		IngestRecords:    ingestRecords,
		TelescopePackets: a.Telescope.Total,
		QUICPackets:      hs.total,
		ResearchPackets:  hs.research,
		NonQUIC:          a.NonQUIC,
		RequestSessions:  len(a.RequestSessions),
		ResponseSessions: len(a.ResponseSessions),
		RequestPackets:   hs.reqPk,
		ResponsePackets:  hs.respPk,
		QUICAttacks:      len(a.QUICDetector.Attacks),
		UniqueVictims:    len(a.Victims()),
		CommonAttacks:    len(a.CommonDetector.Attacks),
		SweepSessions5m:  a.Sweep.Sessions(5),
	}
	b, err := json.MarshalIndent(doc, "", "  ")
	if err != nil { // a flat struct of integers cannot fail to marshal
		return fmt.Sprintf("{\"error\": %q}", err.Error())
	}
	return string(b)
}

// HeadlineMetrics returns the §5.1 headline numbers as an ordered
// name/value list — the machine-comparable form `quicsand compare`
// diffs between two scenarios (report.DiffMetrics). It is derived by
// decoding HeadlineJSON's (flat) document token by token, so the two
// views cannot drift apart: a stat added there automatically joins the
// diff. Only the scenario name is dropped — two different scenarios
// would otherwise always "differ".
func (a *Analysis) HeadlineMetrics() []report.Metric {
	dec := json.NewDecoder(strings.NewReader(a.HeadlineJSON()))
	dec.UseNumber()
	if _, err := dec.Token(); err != nil { // opening brace
		return nil
	}
	var out []report.Metric
	for dec.More() {
		keyTok, err := dec.Token()
		if err != nil {
			return out
		}
		valTok, err := dec.Token()
		if err != nil {
			return out
		}
		key, ok := keyTok.(string)
		if !ok || key == "scenario" || strings.HasPrefix(key, "ingest_") {
			// Replay provenance would make live-vs-replay comparisons of
			// identical analyses always "differ", like the scenario name.
			continue
		}
		out = append(out, report.Metric{Name: key, Value: fmt.Sprint(valTok)})
	}
	return out
}

// Figure2 renders hourly QUIC packet counts by source family.
func (a *Analysis) Figure2() string {
	var b strings.Builder
	b.WriteString("Figure 2: QUIC traffic at the telescope (packets/hour, log sparkline over April 2021)\n")
	for _, label := range []string{"TUM-Scans", "RWTH-Scans", "Other"} {
		series := a.HourlySource.Series[label]
		fmt.Fprintf(&b, "%-11s |%s| total %s\n", label,
			report.Sparkline(series, 72, true), report.Count(a.HourlySource.TotalOf(label)))
	}
	return b.String()
}

// Figure3 renders sanitized requests vs responses per hour.
func (a *Analysis) Figure3() string {
	var b strings.Builder
	b.WriteString("Figure 3: sanitized QUIC packets by type (log sparkline; requests diurnal, responses erratic)\n")
	for _, label := range []string{"Requests", "Responses"} {
		fmt.Fprintf(&b, "%-10s |%s| total %s\n", label,
			report.Sparkline(a.HourlyType.Series[label], 72, true), report.Count(a.HourlyType.TotalOf(label)))
	}
	// Representative-day insert: average request count per hour of day.
	if req := a.HourlyType.Series["Requests"]; req != nil {
		var byHour [24]float64
		for h, v := range req {
			byHour[h%24] += float64(v)
		}
		peakAM, peakPM, trough := byHour[6], byHour[18], byHour[0]
		fmt.Fprintf(&b, "diurnal check: 06:00=%.0f 18:00=%.0f 00:00=%.0f (peaks at 06:00/18:00 UTC expected)\n",
			peakAM, peakPM, trough)
	}
	return b.String()
}

// Figure4 renders the session-count vs timeout sweep.
func (a *Analysis) Figure4() string {
	var b strings.Builder
	b.WriteString("Figure 4: sessions vs inactivity timeout (knee at 5 minutes)\n")
	labels := []string{}
	values := []float64{}
	for _, m := range []int{1, 2, 3, 4, 5, 7, 10, 15, 20, 30, 45, 60} {
		labels = append(labels, fmt.Sprintf("%2d min", m))
		values = append(values, float64(a.Sweep.Sessions(m)))
	}
	b.WriteString(report.BarChart(labels, values, 48))
	fmt.Fprintf(&b, "lower bound (timeout=∞, unique IPs): %s (paper: 11,817)\n", report.Count(a.Sweep.LowerBound()))
	fmt.Fprintf(&b, "chosen threshold: 5 minutes → %s sessions\n", report.Count(a.Sweep.Sessions(5)))
	return b.String()
}

// Figure5 renders the source-network-type matrix.
func (a *Analysis) Figure5() string {
	m := a.TypeMatrix()
	var rows [][]string
	for _, t := range netmodel.AllNetworkTypes {
		e := m[t]
		rows = append(rows, []string{t.String(), report.Count(uint64(e[0])), report.Count(uint64(e[1]))})
	}
	return "Figure 5: source network types of sessions (PeeringDB join)\n" +
		report.Table([]string{"Source ASN Type", "Requests only", "Responses only"}, rows) +
		"(paper: requests from eyeballs, responses almost exclusively from content)\n"
}

// Figure6 renders the attacks-per-victim CDF.
func (a *Analysis) Figure6() string {
	counts := dosdetect.VictimCounts(a.QUICDetector.Attacks)
	var samples []float64
	for _, n := range counts {
		samples = append(samples, float64(n))
	}
	e := stats.NewECDF(samples)
	var b strings.Builder
	b.WriteString("Figure 6: CDF of attacks per QUIC victim\n")
	b.WriteString(report.CDFPlot("", "attacks per victim", []report.CDFSeries{seriesOf("victims", e)}))
	fmt.Fprintf(&b, "victims attacked exactly once: %s (paper: >50%%)\n", report.Percent(e.At(1)*100))
	fmt.Fprintf(&b, "most-attacked victim: %.0f attacks (paper: ≈300)\n", e.Max())
	return b.String()
}

func seriesOf(name string, e *stats.ECDF) report.CDFSeries {
	xs := make([]float64, 0, e.N())
	for _, q := range []float64{0, 0.1, 0.25, 0.5, 0.75, 0.9, 1} {
		xs = append(xs, e.Quantile(q))
	}
	// CDFPlot indexes sorted sample arrays; feed quantile landmarks.
	return report.CDFSeries{Name: name, Xs: xs}
}

// Figure7 renders duration and intensity CDFs, QUIC vs TCP/ICMP.
func (a *Analysis) Figure7() string {
	var b strings.Builder
	qd := stats.NewECDF(a.AttackDurations(dosdetect.VectorQUIC))
	cd := stats.NewECDF(a.AttackDurations(dosdetect.VectorCommon))
	b.WriteString("Figure 7(a): flood durations [s]\n")
	b.WriteString(report.CDFPlot("", "seconds", []report.CDFSeries{
		seriesOf("QUIC", qd), seriesOf("TCP/ICMP", cd),
	}))
	fmt.Fprintf(&b, "median durations: QUIC %.0f s vs TCP/ICMP %.0f s (paper: 255 vs 1499)\n\n", qd.Median(), cd.Median())

	qi := stats.NewECDF(a.AttackIntensities(dosdetect.VectorQUIC))
	ci := stats.NewECDF(a.AttackIntensities(dosdetect.VectorCommon))
	b.WriteString("Figure 7(b): flood intensities [max pps]\n")
	b.WriteString(report.CDFPlot("", "max pps", []report.CDFSeries{
		seriesOf("QUIC", qi), seriesOf("TCP/ICMP", ci),
	}))
	fmt.Fprintf(&b, "median intensities: QUIC %.2f vs TCP/ICMP %.2f max pps (paper: ≈1 both)\n", qi.Median(), ci.Median())
	fmt.Fprintf(&b, "Internet-wide rate estimate: ×512 telescope factor → median ≈ %.0f pps\n", qi.Median()*512)
	return b.String()
}

// Figure8 renders the multi-vector share bar.
func (a *Analysis) Figure8() string {
	c, s, q := a.Correlation.Shares()
	var b strings.Builder
	b.WriteString("Figure 8: multi-vector attacks — share of QUIC attack sessions\n")
	b.WriteString(report.BarChart(
		[]string{"Concurrent Attack", "Sequential Attack", "QUIC-only"},
		[]float64{c, s, q}, 50))
	fmt.Fprintf(&b, "(paper: 51%% / 40%% / 9%%)\n")
	return b.String()
}

// Figure9 renders the per-provider attack anatomy comparison.
func (a *Analysis) Figure9() string {
	type agg struct {
		n                                     int
		scids, addrs, ports, dur, pps, pkts   float64
		scidsMax, addrsMax, portsMax, pktsMax float64
		versions                              map[wire.Version]int
	}
	byOrg := map[string]*agg{}
	for _, atk := range a.QUICDetector.Attacks {
		org := a.Census.OrgOf(atk.Victim)
		if org != "Google" && org != "Facebook" {
			continue
		}
		g := byOrg[org]
		if g == nil {
			g = &agg{versions: map[wire.Version]int{}}
			byOrg[org] = g
		}
		g.n++
		g.scids += float64(atk.UniqueSCIDs)
		g.addrs += float64(atk.SpoofedClients)
		g.ports += float64(atk.ClientPorts)
		g.dur += atk.Duration()
		g.pps += atk.MaxPPS
		g.pkts += float64(atk.Packets)
		g.scidsMax = maxF(g.scidsMax, float64(atk.UniqueSCIDs))
		g.addrsMax = maxF(g.addrsMax, float64(atk.SpoofedClients))
		g.portsMax = maxF(g.portsMax, float64(atk.ClientPorts))
		g.pktsMax = maxF(g.pktsMax, float64(atk.Packets))
		g.versions[atk.Version]++
	}
	var rows [][]string
	for _, org := range []string{"Facebook", "Google"} {
		g := byOrg[org]
		if g == nil || g.n == 0 {
			rows = append(rows, []string{org, "0", "-", "-", "-", "-", "-", "-", "-"})
			continue
		}
		n := float64(g.n)
		domV, domN := wire.Version(0), 0
		for v, c := range g.versions {
			if c > domN || (c == domN && v < domV) {
				domV, domN = v, c
			}
		}
		rows = append(rows, []string{
			org, fmt.Sprint(g.n),
			fmt.Sprintf("%.1f", g.addrs/n),
			fmt.Sprintf("%.1f", g.scids/n),
			fmt.Sprintf("%.1f", g.ports/n),
			fmt.Sprintf("%.0f", g.dur/n),
			fmt.Sprintf("%.2f", g.pps/n),
			fmt.Sprintf("%.0f", g.pkts/n),
			fmt.Sprintf("%s (%s)", domV, report.Percent(float64(domN)/n*100)),
		})
	}
	return "Figure 9: attack anatomy per content provider (means per attack)\n" +
		report.Table([]string{"Provider", "Attacks", "SpoofedClients", "UniqueSCIDs", "ClientPorts", "Dur[s]", "Max pps", "Packets", "Dominant version"}, rows) +
		"(paper: Google more SCIDs despite fewer packets; mvfst-draft-27 95% FB, draft-29 78% Google)\n"
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// Figure10 renders the threshold-weight sweep.
func (a *Analysis) Figure10() string {
	weights := []float64{0.2, 0.5, 1, 2, 4, 6, 8, 10}
	counts, shares := dosdetect.WeightSweep(a.ResponseSessions, weights, func(v netmodel.Addr) bool {
		org := a.Census.OrgOf(v)
		return org == "Google" || org == "Facebook"
	})
	var rows [][]string
	for i, w := range weights {
		rows = append(rows, []string{
			fmt.Sprintf("%.1f", w),
			report.Count(uint64(counts[i])),
			report.Percent(shares[i]),
		})
	}
	return "Figure 10: DoS threshold weight sweep (Appendix B)\n" +
		report.Table([]string{"Weight w", "QUIC attacks", "Share FB+Google"}, rows) +
		"(paper: 1101/130/36/14/5 attacks at w=2/4/6/8/10; share stays high)\n"
}

// Figure11 renders the busiest multi-vector victim's timeline.
func (a *Analysis) Figure11() string {
	victim, ok := correlate.BusiestMultiVectorVictim(a.QUICDetector.Sorted(), a.CommonDetector.Sorted())
	if !ok {
		return "Figure 11: no multi-vector victim found\n"
	}
	tl := correlate.Timeline(victim, a.QUICDetector.Attacks, a.CommonDetector.Attacks, 0)
	var rows [][]string
	origin := tl[0].Start
	for _, e := range tl {
		rows = append(rows, []string{
			e.Vector.String(),
			fmt.Sprintf("+%.0fs", e.Start-origin),
			fmt.Sprintf("+%.0fs", e.End-origin),
			fmt.Sprintf("%.0fs", e.End-e.Start),
		})
	}
	return fmt.Sprintf("Figure 11: attack timeline for victim %v (%s)\n", victim, a.Census.OrgOf(victim)) +
		report.Table([]string{"Vector", "Start", "Stop", "Duration"}, rows)
}

// Figure12 renders the concurrent-attack overlap CDF.
func (a *Analysis) Figure12() string {
	e := stats.NewECDF(a.Correlation.OverlapShares())
	var b strings.Builder
	b.WriteString("Figure 12: time overlap of concurrent QUIC attacks with TCP/ICMP attacks [%]\n")
	b.WriteString(report.CDFPlot("", "overlap %", []report.CDFSeries{seriesOf(
		fmt.Sprintf("concurrent (n=%d)", e.N()), e)}))
	full := 0
	for _, v := range a.Correlation.OverlapShares() {
		if v >= 99.999 {
			full++
		}
	}
	if e.N() > 0 {
		fmt.Fprintf(&b, "fully overlapped: %s (paper: ~75%%), mean overlap %.1f%% (paper: 95%%)\n",
			report.Percent(float64(full)/float64(e.N())*100), e.Mean())
	}
	return b.String()
}

// Figure13 renders the sequential-attack gap CDF.
func (a *Analysis) Figure13() string {
	gaps := a.Correlation.SequentialGaps()
	e := stats.NewECDF(gaps)
	var b strings.Builder
	b.WriteString("Figure 13: distance of sequential QUIC attacks to nearest TCP/ICMP attack [s]\n")
	b.WriteString(report.CDFPlot("", "seconds (minute=60, hour=3600, day=86400)", []report.CDFSeries{
		seriesOf(fmt.Sprintf("sequential (n=%d)", e.N()), e)}))
	over1h := 0
	for _, g := range gaps {
		if g > 3600 {
			over1h++
		}
	}
	if e.N() > 0 {
		fmt.Fprintf(&b, "gaps above one hour: %s (paper: 82%%); mean gap %.1f h (paper: 36 h); max %.1f d (paper: ≤28 d)\n",
			report.Percent(float64(over1h)/float64(e.N())*100), e.Mean()/3600, e.Max()/86400)
	}
	return b.String()
}

// Section6 renders the discussion-section measurements (message mix,
// GreyNoise join, Appendix B excluded profile).
func (a *Analysis) Section6() string {
	var b strings.Builder
	ini, hs, other := a.MessageMix()
	fmt.Fprintf(&b, "attack backscatter message mix: Initial %s, Handshake %s, other %s (paper: 31%% / 57%% / 12%%)\n",
		report.Percent(ini), report.Percent(hs), report.Percent(other))
	pk, dur, pps := a.ExcludedProfile()
	fmt.Fprintf(&b, "excluded response sessions: median %.0f pkts, %.0f s, %.2f max pps (paper: 11 pkts, 7 s, 0.18)\n", pk, dur, pps)
	fmt.Fprintf(&b, "GreyNoise join over %d scan sources: benign %d, malicious %s, unknown %d (paper: 0 benign, 2.3%% known bots)\n",
		a.ScanSources.Total, a.ScanSources.Benign, report.Percent(a.ScanSources.MaliciousShare()), a.ScanSources.Unknown)
	fmt.Fprintf(&b, "top origin countries: ")
	for i, c := range a.ScanSources.TopCountries(3) {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s %s", c.Country, report.Percent(c.Share))
	}
	b.WriteString(" (paper: BD 34%, US 27%, DZ 8%)\n")
	return b.String()
}

// ScenarioInfo renders the workload description of a scenario-driven
// run: the phase list with its windows and the schedule-derived ground
// truth the packet-level figures are measured against.
func (a *Analysis) ScenarioInfo() string {
	sc := a.Config.Scenario
	if sc == nil {
		return "scenario: none (paper-2021 hard-coded schedule)\n"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "scenario: %s\n", sc.Name)
	if sc.Description != "" {
		fmt.Fprintf(&b, "  %s\n", sc.Description)
	}
	if sc.Paper {
		b.WriteString("  (paper-2021 hard-coded schedule)\n")
	}
	var rows [][]string
	for i := range sc.Phases {
		ph := &sc.Phases[i]
		name := ph.Label
		if name == "" {
			name = ph.Kind
		}
		start, dur := ph.Window()
		var load string
		switch ph.Kind {
		case scenario.KindResearchScan:
			load = fmt.Sprintf("%d sweeps", ph.Sweeps)
		case scenario.KindScan:
			load = fmt.Sprintf("%d bots", ph.Sources)
		case scenario.KindFlood:
			load = fmt.Sprintf("%d %s attacks / %d victims", ph.Attacks, ph.Vector, ph.Victims.Size)
			if ph.RetryMitigation {
				load += " (retry-mitigated)"
			}
			if ph.Pair != nil {
				load += " (paired)"
			}
		case scenario.KindMisconfig:
			load = fmt.Sprintf("%d responders", ph.Sources)
		}
		rows = append(rows, []string{
			fmt.Sprint(i), name, ph.Kind,
			fmt.Sprintf("day %.1f +%.1fd", start/86400, dur/86400),
			load,
		})
	}
	if len(rows) > 0 {
		b.WriteString(report.Table([]string{"#", "Phase", "Kind", "Window", "Load (at scale 1)"}, rows))
	}
	if t := a.Truth; t != nil {
		fmt.Fprintf(&b, "scheduled ground truth: %d QUIC attacks on %d victims, %d TCP/ICMP attacks, %d bots, %d responders\n",
			t.QUICAttacks, len(t.QUICVictims), t.CommonAttacks, len(t.BotAddrs), t.MisconfSources)
	}
	return b.String()
}

// RenderAll produces the complete report.
func (a *Analysis) RenderAll() string {
	var sections []string
	if a.Config.Scenario != nil {
		sections = append(sections, "=== Scenario ===", a.ScenarioInfo())
	}
	sections = append(sections,
		"=== Headline (§5.1) ===", a.Headline(),
		"=== Figure 2 ===", a.Figure2(),
		"=== Figure 3 ===", a.Figure3(),
		"=== Figure 4 ===", a.Figure4(),
		"=== Figure 5 ===", a.Figure5(),
		"=== Figure 6 ===", a.Figure6(),
		"=== Figure 7 ===", a.Figure7(),
		"=== Figure 8 ===", a.Figure8(),
		"=== Figure 9 ===", a.Figure9(),
		"=== Figure 10 ===", a.Figure10(),
		"=== Figure 11 ===", a.Figure11(),
		"=== Figure 12 ===", a.Figure12(),
		"=== Figure 13 ===", a.Figure13(),
		"=== Section 6 ===", a.Section6(),
	)
	return strings.Join(sections, "\n")
}

// sortAttacksByStart is a small helper kept for external callers.
func sortAttacksByStart(attacks []*dosdetect.Attack) {
	sort.Slice(attacks, func(i, j int) bool { return attacks[i].Start < attacks[j].Start })
}

var _ = sortAttacksByStart
var _ = telescope.HoursInMeasurement
