package quicsand

// The benchmark harness regenerates every table and figure of the
// paper's evaluation (run with `go test -bench . -benchmem`). Each
// BenchmarkFigureN measures the analysis path that produces that
// figure over a shared generated month; BenchmarkPipeline measures the
// full generate-and-analyze cycle; BenchmarkTable1 sweeps the flood
// capacity model. Ablation benches cover the design choices DESIGN.md
// §6 lists.

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"quicsand/internal/capture"
	"quicsand/internal/correlate"
	"quicsand/internal/dissect"
	"quicsand/internal/dosdetect"
	"quicsand/internal/flood"
	"quicsand/internal/handshake"
	"quicsand/internal/ibr"
	"quicsand/internal/netmodel"
	"quicsand/internal/scenario"
	"quicsand/internal/sessions"
	"quicsand/internal/telescope"
	"quicsand/internal/tlsmini"
	"quicsand/internal/wire"
)

var (
	benchOnce     sync.Once
	benchAnalysis *Analysis
)

func benchPipeline(b *testing.B) *Analysis {
	b.Helper()
	benchOnce.Do(func() {
		a, err := Run(Config{Seed: 7, Scale: 0.02, ResearchThin: 16384})
		if err != nil {
			b.Fatal(err)
		}
		benchAnalysis = a
	})
	return benchAnalysis
}

// benchPipelineCfg is the shared configuration for the pipeline
// benchmarks: large enough that the streaming stages dominate the
// fixed scheduling cost, so worker scaling is visible.
func benchPipelineCfg(workers int) Config {
	return Config{Seed: 7, Scale: 0.01, ResearchThin: 1 << 20, Workers: workers}
}

// BenchmarkPipeline measures one complete generate→analyze cycle at a
// small scale (the §5.1 headline path) with the default worker count
// (all CPUs).
func BenchmarkPipeline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		a, err := Run(benchPipelineCfg(0))
		if err != nil {
			b.Fatal(err)
		}
		if len(a.QUICSessions) == 0 {
			b.Fatal("empty run")
		}
		b.ReportMetric(a.Pipeline.Throughput(), "packets/s")
	}
}

// BenchmarkPipelineParallel sweeps the engine's worker count over the
// same month; workers=1 is the sequential baseline against which the
// multi-core speedup is measured (results are bit-identical across
// the sweep — TestWorkersBitIdentical).
func BenchmarkPipelineParallel(b *testing.B) {
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				a, err := Run(benchPipelineCfg(w))
				if err != nil {
					b.Fatal(err)
				}
				if len(a.QUICSessions) == 0 {
					b.Fatal("empty run")
				}
				b.ReportMetric(a.Pipeline.Throughput(), "packets/s")
			}
		})
	}
}

var (
	replayOnce     sync.Once
	replayQSND     []byte
	replayPcap     []byte
	replayTraceErr error
)

// benchReplayTraces records the benchmark month once, in both
// containers, so the replay benchmarks measure pure ingestion.
func benchReplayTraces(b *testing.B) (qsnd, pcap []byte) {
	b.Helper()
	replayOnce.Do(func() {
		var buf bytes.Buffer
		w := telescope.NewWriter(&buf)
		cfg := benchPipelineCfg(0)
		cfg.Trace = w
		if _, err := Run(cfg); err != nil {
			replayTraceErr = err
			return
		}
		if err := w.Flush(); err != nil {
			replayTraceErr = err
			return
		}
		replayQSND = buf.Bytes()

		var pb bytes.Buffer
		src, err := capture.NewSource(bytes.NewReader(replayQSND))
		if err != nil {
			replayTraceErr = err
			return
		}
		sink := capture.NewSink(&pb, capture.FormatPcap)
		if _, err := capture.Copy(sink, src); err != nil {
			replayTraceErr = err
			return
		}
		if err := sink.Flush(); err != nil {
			replayTraceErr = err
			return
		}
		replayPcap = pb.Bytes()
	})
	if replayTraceErr != nil {
		b.Fatal(replayTraceErr)
	}
	return replayQSND, replayPcap
}

func benchReplay(b *testing.B, data []byte) {
	b.Helper()
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src, err := capture.NewSource(bytes.NewReader(data))
		if err != nil {
			b.Fatal(err)
		}
		a, err := Replay(benchPipelineCfg(0), src)
		if err != nil {
			b.Fatal(err)
		}
		if len(a.QUICSessions) == 0 {
			b.Fatal("empty replay")
		}
		b.ReportMetric(a.Pipeline.Throughput(), "packets/s")
	}
}

// BenchmarkReplay measures stored-month ingestion — decode, scatter to
// the sharded engine, full analysis — from the native checkpoint
// format on the production path: capture.OpenFile memory-maps the
// checkpoint, so framing is offset arithmetic and payloads alias the
// page cache (packets/s is the pipeline's wall-clock metric, MB/s the
// container read rate).
func BenchmarkReplay(b *testing.B) {
	qsnd, _ := benchReplayTraces(b)
	path := filepath.Join(b.TempDir(), "month.qsnd")
	if err := os.WriteFile(path, qsnd, 0o644); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(qsnd)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f, err := os.Open(path)
		if err != nil {
			b.Fatal(err)
		}
		src, err := capture.OpenFile(f)
		if err != nil {
			b.Fatal(err)
		}
		a, err := Replay(benchPipelineCfg(0), src)
		if err != nil {
			b.Fatal(err)
		}
		if c, ok := src.(io.Closer); ok {
			_ = c.Close()
		}
		_ = f.Close()
		if len(a.QUICSessions) == 0 {
			b.Fatal("empty replay")
		}
		b.ReportMetric(a.Pipeline.Throughput(), "packets/s")
	}
}

// BenchmarkReplayStream is native-checkpoint ingestion through the
// streamed decoder (no mmap — the path a pipe or socket replay takes).
func BenchmarkReplayStream(b *testing.B) {
	qsnd, _ := benchReplayTraces(b)
	benchReplay(b, qsnd)
}

// BenchmarkReplayPcap is the same ingestion through the pcap decode
// path (Ethernet decapsulation, IPv4/UDP parse, trailer fold-back).
func BenchmarkReplayPcap(b *testing.B) {
	_, pcap := benchReplayTraces(b)
	benchReplay(b, pcap)
}

// BenchmarkReplayIngest isolates stored-month decode — frame and parse
// every record of the checkpoint with no analysis pipeline behind it —
// so the ingest-path speedup is visible without the analysis floor
// that dominates the end-to-end replay benchmarks. "stream" is the
// io.Reader decoder (pipes, sockets); "mmap" is the capture.OpenFile
// zero-copy path.
func BenchmarkReplayIngest(b *testing.B) {
	qsnd, _ := benchReplayTraces(b)
	drain := func(b *testing.B, src capture.Source) int {
		n := 0
		for {
			if _, err := src.Next(); err != nil {
				if err == io.EOF {
					break
				}
				b.Fatal(err)
			}
			n++
		}
		if n == 0 {
			b.Fatal("empty capture")
		}
		return n
	}
	b.Run("stream", func(b *testing.B) {
		b.SetBytes(int64(len(qsnd)))
		total := 0
		for i := 0; i < b.N; i++ {
			src, err := capture.NewSource(bytes.NewReader(qsnd))
			if err != nil {
				b.Fatal(err)
			}
			total += drain(b, src)
		}
		b.ReportMetric(float64(total)/b.Elapsed().Seconds(), "packets/s")
	})
	b.Run("mmap", func(b *testing.B) {
		path := filepath.Join(b.TempDir(), "month.qsnd")
		if err := os.WriteFile(path, qsnd, 0o644); err != nil {
			b.Fatal(err)
		}
		b.SetBytes(int64(len(qsnd)))
		b.ResetTimer()
		total := 0
		for i := 0; i < b.N; i++ {
			f, err := os.Open(path)
			if err != nil {
				b.Fatal(err)
			}
			src, err := capture.OpenFile(f)
			if err != nil {
				b.Fatal(err)
			}
			total += drain(b, src)
			if c, ok := src.(io.Closer); ok {
				_ = c.Close()
			}
			_ = f.Close()
		}
		b.ReportMetric(float64(total)/b.Elapsed().Seconds(), "packets/s")
	})
}

// BenchmarkScenario measures one complete generate→analyze cycle per
// built-in scenario (internal/scenario) at the BenchmarkPipeline
// scale: compilation resolves phases at setup, so throughput should
// track the paper month's for comparable packet mixes. Snapshots land
// in BENCH_PR4.json via scripts/bench_snapshot.sh.
func BenchmarkScenario(b *testing.B) {
	for _, name := range scenario.Builtins() {
		sc, err := scenario.Builtin(name)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := benchPipelineCfg(0)
				cfg.Scenario = sc
				a, err := Run(cfg)
				if err != nil {
					b.Fatal(err)
				}
				if a.Telescope.Total == 0 {
					b.Fatal("empty scenario run")
				}
				b.ReportMetric(a.Pipeline.Throughput(), "packets/s")
			}
		})
	}
}

func BenchmarkFigure2(b *testing.B) {
	a := benchPipeline(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(a.Figure2()) == 0 {
			b.Fatal("empty figure")
		}
	}
}

func BenchmarkFigure3(b *testing.B) {
	a := benchPipeline(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(a.Figure3()) == 0 {
			b.Fatal("empty figure")
		}
	}
}

func BenchmarkFigure4(b *testing.B) {
	a := benchPipeline(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// The sweep computation itself plus rendering.
		for m := 1; m <= 60; m++ {
			_ = a.Sweep.Sessions(m)
		}
		if len(a.Figure4()) == 0 {
			b.Fatal("empty figure")
		}
	}
}

func BenchmarkFigure5(b *testing.B) {
	a := benchPipeline(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := a.TypeMatrix()
		if len(m) == 0 {
			b.Fatal("empty matrix")
		}
	}
}

func BenchmarkFigure6(b *testing.B) {
	a := benchPipeline(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		counts := dosdetect.VictimCounts(a.QUICDetector.Attacks)
		if len(counts) == 0 {
			b.Fatal("no victims")
		}
		_ = a.Figure6()
	}
}

func BenchmarkFigure7(b *testing.B) {
	a := benchPipeline(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(a.Figure7()) == 0 {
			b.Fatal("empty figure")
		}
	}
}

func BenchmarkFigure8(b *testing.B) {
	a := benchPipeline(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Re-run the correlation (the figure's analysis content).
		s := correlate.Correlate(a.QUICDetector.Sorted(), a.CommonDetector.Sorted())
		if len(s.Results) == 0 {
			b.Fatal("no correlation results")
		}
	}
}

func BenchmarkFigure9(b *testing.B) {
	a := benchPipeline(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(a.Figure9()) == 0 {
			b.Fatal("empty figure")
		}
	}
}

func BenchmarkFigure10(b *testing.B) {
	a := benchPipeline(b)
	weights := []float64{0.2, 0.5, 1, 2, 4, 6, 8, 10}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		counts, _ := dosdetect.WeightSweep(a.ResponseSessions, weights, func(v netmodel.Addr) bool {
			org := a.Census.OrgOf(v)
			return org == "Google" || org == "Facebook"
		})
		if counts[2] == 0 {
			b.Fatal("no attacks at w=1")
		}
	}
}

func BenchmarkFigure11(b *testing.B) {
	a := benchPipeline(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(a.Figure11()) == 0 {
			b.Fatal("empty figure")
		}
	}
}

func BenchmarkFigure12(b *testing.B) {
	a := benchPipeline(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(a.Figure12()) == 0 {
			b.Fatal("empty figure")
		}
	}
}

func BenchmarkFigure13(b *testing.B) {
	a := benchPipeline(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(a.Figure13()) == 0 {
			b.Fatal("empty figure")
		}
	}
}

// BenchmarkTable1Floods runs the scenario-parameterized Table 1 flood
// workloads: each flood-centric built-in generates and analyzes its
// month (research scanners skipped so flood handling dominates), with
// the detected Moore-threshold attack count reported alongside
// throughput and asserted against the analytic oracle's tolerance-free
// cap (internal/oracle). Snapshots land in BENCH_PR5.json via
// scripts/bench_snapshot.sh.
func BenchmarkTable1Floods(b *testing.B) {
	for _, name := range []string{"handshake-flood-qfam", "retry-mitigated-flood", "multi-vector-burst"} {
		sc, err := scenario.Builtin(name)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(name, func(b *testing.B) {
			cfg := benchPipelineCfg(0)
			cfg.SkipResearch = true
			cfg.Scenario = sc
			exp, err := Expect(cfg)
			if err != nil {
				b.Fatal(err)
			}
			attackCap := exp.QUICAttackCap()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				a, err := Run(cfg)
				if err != nil {
					b.Fatal(err)
				}
				attacks := len(a.QUICDetector.Attacks)
				if attacks > attackCap {
					b.Fatalf("%d attacks exceed the oracle cap %d", attacks, attackCap)
				}
				b.ReportMetric(a.Pipeline.Throughput(), "packets/s")
				b.ReportMetric(float64(attacks), "attacks")
			}
		})
	}
}

// BenchmarkTable1 sweeps the paper's nine flood configurations.
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := flood.Table1Rows(500000)
		if len(rows) != 9 {
			b.Fatal("bad row count")
		}
	}
}

// ---------------------------------------------------------------------------
// Ablation benches (DESIGN.md §6)

// BenchmarkAblationDissectDepth compares port-based classification
// against full payload validation — the cost of the paper's
// false-positive filter.
func BenchmarkAblationDissectDepth(b *testing.B) {
	client, err := handshake.NewClient(handshake.ClientConfig{ServerName: "bench.test"})
	if err != nil {
		b.Fatal(err)
	}
	initial, err := client.Start()
	if err != nil {
		b.Fatal(err)
	}
	b.Run("port-only", func(b *testing.B) {
		d := &dissect.Dissector{TryDecrypt: false}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := d.Dissect(initial); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("full-validation", func(b *testing.B) {
		d := dissect.NewDissector()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := d.Dissect(initial); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationTelescopeSize measures how shrinking the telescope
// ( /9 → /12 → /16 ) thins the observable backscatter — the
// sampling-sensitivity question behind the ×512 extrapolation.
func BenchmarkAblationTelescopeSize(b *testing.B) {
	gen, err := ibr.New(ibr.Config{Seed: 3, Scale: 0.005, SkipResearch: true})
	if err != nil {
		b.Fatal(err)
	}
	var pkts []*telescope.Packet
	gen.Run(func(p *telescope.Packet) { pkts = append(pkts, p) })
	for _, bits := range []int{9, 12, 16} {
		prefix := netmodel.Prefix{Base: netmodel.TelescopePrefix.Base, Bits: bits}
		b.Run(prefix.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				seen := 0
				for _, p := range pkts {
					if prefix.Contains(p.Dst) {
						seen++
					}
				}
				if bits == 9 && seen != len(pkts) {
					b.Fatal("the /9 must see everything")
				}
			}
		})
	}
}

// BenchmarkAblationTimeout compares sessionization at the paper's
// 5-minute knee against the 1- and 60-minute extremes.
func BenchmarkAblationTimeout(b *testing.B) {
	gen, err := ibr.New(ibr.Config{Seed: 5, Scale: 0.005, SkipResearch: true})
	if err != nil {
		b.Fatal(err)
	}
	var pkts []*telescope.Packet
	gen.Run(func(p *telescope.Packet) {
		if p.IsQUICCandidate() {
			pkts = append(pkts, p)
		}
	})
	for _, timeout := range []int{1, 5, 60} {
		b.Run(map[int]string{1: "1min", 5: "5min", 60: "60min"}[timeout], func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sz := sessions.NewSessionizer(nil)
				sz.Timeout = timeDuration(timeout)
				for _, p := range pkts {
					sz.Observe(p, nil)
				}
				sz.Flush()
				if sz.Emitted == 0 {
					b.Fatal("no sessions")
				}
			}
		})
	}
}

// ---------------------------------------------------------------------------
// Substrate micro-benchmarks

func BenchmarkWireParseInitial(b *testing.B) {
	client, _ := handshake.NewClient(handshake.ClientConfig{})
	initial, _ := client.Start()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := wire.ParseLongHeader(initial); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHandshakeFull(b *testing.B) {
	id := benchIdentity(b)
	for i := 0; i < b.N; i++ {
		client, err := handshake.NewClient(handshake.ClientConfig{ServerName: "bench.test"})
		if err != nil {
			b.Fatal(err)
		}
		first, err := client.Start()
		if err != nil {
			b.Fatal(err)
		}
		h, _ := wire.ParseLongHeader(first)
		server, err := handshake.NewServerConn(handshake.ServerConfig{Identity: id}, wire.Version1, h.DstConnID, h.SrcConnID)
		if err != nil {
			b.Fatal(err)
		}
		toServer := [][]byte{first}
		for r := 0; r < 4 && !client.Done(); r++ {
			var toClient [][]byte
			for _, d := range toServer {
				out, err := server.HandleDatagram(d)
				if err != nil {
					b.Fatal(err)
				}
				toClient = append(toClient, out...)
			}
			toServer = nil
			for _, d := range toClient {
				out, err := client.HandleDatagram(d)
				if err != nil {
					b.Fatal(err)
				}
				toServer = append(toServer, out...)
			}
		}
		if !client.Done() {
			b.Fatal("handshake incomplete")
		}
	}
}

func BenchmarkGeneratorThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		gen, err := ibr.New(ibr.Config{Seed: 11, Scale: 0.002, SkipResearch: true})
		if err != nil {
			b.Fatal(err)
		}
		n := 0
		gen.Run(func(*telescope.Packet) { n++ })
		b.ReportMetric(float64(n), "packets/op")
	}
}

// helpers

var (
	benchIdentityOnce sync.Once
	benchIdentityVal  *tlsmini.Identity
)

func benchIdentity(b *testing.B) *tlsmini.Identity {
	b.Helper()
	benchIdentityOnce.Do(func() {
		id, err := tlsmini.GenerateSelfSigned("bench.test", 600)
		if err != nil {
			b.Fatal(err)
		}
		benchIdentityVal = id
	})
	return benchIdentityVal
}

func timeDuration(minutes int) time.Duration {
	return time.Duration(minutes) * time.Minute
}
