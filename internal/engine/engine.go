// Package engine implements the sharded concurrent pipeline the
// measurement analyses run on: a set of per-shard item streams (feeds)
// is processed by one worker goroutine per shard with zero cross-shard
// locking on the hot path, while an optional tap merges every shard's
// emissions back into a single canonically ordered stream (the trace
// checkpoint path). Shard states are reduced by the caller after Run
// returns; provided the reduction is order-independent (commutative
// counter merges, canonical sorts), any worker count produces results
// bit-identical to the sequential single-shard run — see DESIGN.md §8.
//
// The engine is generic over the item type and knows nothing about
// packets: quicsand.Run drives it with *telescope.Packet items, and
// cmd/telescoped with live datagrams.
package engine

import (
	"context"
	"fmt"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"sync"
	"time"

	"quicsand/internal/losertree"
	"quicsand/internal/telemetry"
)

// Config parameterizes a pipeline run.
type Config struct {
	// Workers is the shard count. 0 selects GOMAXPROCS; 1 runs the
	// whole pipeline inline on the calling goroutine — the sequential
	// path, against which parallel runs are bit-identical.
	Workers int
	// BatchSize is the number of items per tap batch (default 256).
	// Larger batches amortize channel operations; smaller ones bound
	// the reordering buffer.
	BatchSize int
	// TapDepth is the per-shard tap queue depth in batches (default 4).
	// Together with BatchSize it bounds how far a fast shard can run
	// ahead of the tap merge — the pipeline's backpressure window.
	TapDepth int
	// Recorder, when non-nil, is the run's flight recorder (DESIGN.md
	// §15): every SliceItems items each worker closes an analyze span
	// (time inside process) and a feed span (time outside it) on its
	// shard ring, samples its tap queue depth, and the tap merge slices
	// its own span stream on the driver ring. nil — the default — makes
	// every instrumented site a single predictable nil check.
	Recorder *telemetry.Recorder
	// FeedStage labels the worker's feed-side span track: what the
	// shard is doing when it is not inside process. Live runs generate
	// (telemetry.StageGenerate — the zero Stage maps here), replays
	// drain scatter queues (StageScatter), telescoped waits on its
	// socket (StageIngest).
	FeedStage telemetry.Stage
}

// feedStage resolves the feed-side track label; the zero value
// (StagePlan, which no feed can be) selects StageGenerate.
func (c Config) feedStage() telemetry.Stage {
	if c.FeedStage == telemetry.StagePlan {
		return telemetry.StageGenerate
	}
	return c.FeedStage
}

// ResolveWorkers returns the effective shard count.
func (c Config) ResolveWorkers() int {
	w := c.Workers
	if w == 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w < 1 {
		w = 1
	}
	return w
}

func (c Config) batchSize() int {
	if c.BatchSize > 0 {
		return c.BatchSize
	}
	return 256
}

func (c Config) tapDepth() int {
	if c.TapDepth > 0 {
		return c.TapDepth
	}
	return 4
}

// Feed streams one shard's items, in that shard's canonical order, by
// calling emit once per item. It runs on the shard's worker goroutine
// and returns at end of stream.
type Feed[T any] func(emit func(T))

// Tap reassembles the per-shard streams into one globally ordered
// stream. Sink observes every item that Process kept, in the unique
// order defined by Less — independent of the worker count.
type Tap[T any] struct {
	// Less must be a strict weak ordering consistent across shards.
	// Items comparing equal must originate from the same shard: the
	// merge is stable within a shard but breaks cross-shard ties by
	// shard index, which varies with the worker count.
	Less func(a, b T) bool
	// Sink receives the merged stream on the caller's goroutine.
	Sink func(T)
}

// Stage records one pipeline stage's volume and latency.
type Stage struct {
	Name  string
	Items uint64
	Wall  time.Duration
}

// PerSecond returns the stage throughput in items per second.
func (s Stage) PerSecond() float64 {
	if s.Wall <= 0 {
		return 0
	}
	return float64(s.Items) / s.Wall.Seconds()
}

// Stats exposes per-stage throughput for one pipeline run. The engine
// fills the shard fields and the "analyze" (and, when tapped, "tap")
// stages; callers append their own stages (scheduling, reduction).
type Stats struct {
	// Workers is the shard count the run used.
	Workers int
	// ShardItems counts items processed per shard.
	ShardItems []uint64
	// ShardBusy is each shard worker's busy wall time.
	ShardBusy []time.Duration
	// Stages lists stage metrics in pipeline order.
	Stages []Stage
	// Wall is the total wall time, set by the caller via Finish.
	Wall time.Duration
	// Engine holds the tap/recycling telemetry merged across shards.
	// These counters are runtime-dependent (batch boundaries and buffer
	// reuse vary with scheduling), not part of the deterministic stream
	// projection.
	Engine telemetry.Engine

	start time.Time
}

// NewStats creates a Stats anchored at the current time; Finish stamps
// the total wall duration.
func NewStats(workers int) *Stats {
	return &Stats{Workers: workers, start: time.Now()}
}

// AddStage appends a caller-defined stage.
func (st *Stats) AddStage(name string, items uint64, wall time.Duration) {
	st.Stages = append(st.Stages, Stage{Name: name, Items: items, Wall: wall})
}

// Finish stamps the total wall time.
func (st *Stats) Finish() { st.Wall = time.Since(st.start) }

// Items returns the total item count across shards.
func (st *Stats) Items() uint64 {
	var n uint64
	for _, v := range st.ShardItems {
		n += v
	}
	return n
}

// StageNamed returns the stage with the given name, or a zero Stage.
func (st *Stats) StageNamed(name string) Stage {
	for _, s := range st.Stages {
		if s.Name == name {
			return s
		}
	}
	return Stage{}
}

// Throughput returns overall items per second over the total wall time.
func (st *Stats) Throughput() float64 {
	if st.Wall <= 0 {
		return 0
	}
	return float64(st.Items()) / st.Wall.Seconds()
}

// String renders a small per-stage table.
func (st *Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "pipeline: %d workers, %d items, %v wall (%.0f items/s)\n",
		st.Workers, st.Items(), st.Wall.Round(time.Millisecond), st.Throughput())
	for _, s := range st.Stages {
		fmt.Fprintf(&b, "  %-10s %12d items  %10v  %12.0f items/s\n",
			s.Name, s.Items, s.Wall.Round(time.Microsecond), s.PerSecond())
	}
	var busiest time.Duration
	for _, d := range st.ShardBusy {
		if d > busiest {
			busiest = d
		}
	}
	if len(st.ShardBusy) > 1 {
		fmt.Fprintf(&b, "  busiest shard %v of %d shards\n", busiest.Round(time.Microsecond), len(st.ShardBusy))
	}
	return b.String()
}

// Run executes the sharded pipeline: feeds[i] is drained on shard i's
// worker goroutine, each item passed to process(i, item). Process
// returns whether the item is forwarded to the tap. With a single feed
// everything runs inline on the calling goroutine; otherwise the tap
// merge runs on the calling goroutine concurrently with the workers,
// and bounded per-shard queues provide backpressure.
//
// Process is called from at most one goroutine per shard index, so
// per-shard state needs no locking; it must not touch other shards'
// state. Run returns once every feed is drained and the tap has seen
// every kept item.
func Run[T any](cfg Config, feeds []Feed[T], process func(shard int, item T) bool, tap *Tap[T]) *Stats {
	n := len(feeds)
	st := NewStats(n)
	st.ShardItems = make([]uint64, n)
	st.ShardBusy = make([]time.Duration, n)
	rec := cfg.Recorder
	rec.Prepare(n) // idempotent; nil-safe
	sliceLimit := uint64(rec.SliceItems())
	feedStage := cfg.feedStage()
	t0 := time.Now()

	if n == 1 {
		// Sequential path: no goroutines, no channels. The tap sink's
		// own wall time is metered separately so the "tap" stage
		// reports what the sink actually cost instead of double
		// counting the whole analyze pass. With a recorder the same
		// clock reads additionally close per-slice spans on shard 0's
		// ring (analyze = process, merge = tap sink, feed = the rest).
		var tapped uint64
		var tapWall time.Duration
		ring := rec.ShardRing(0)
		var sl spanSlice
		sl.start = ring.Now()
		pprof.Do(context.Background(), pprof.Labels("shard", "0", "stage", "analyze"), func(context.Context) {
			feeds[0](func(item T) {
				st.ShardItems[0]++
				if ring == nil {
					if process(0, item) && tap != nil {
						tapped++
						s := time.Now()
						tap.Sink(item)
						tapWall += time.Since(s)
					}
					return
				}
				p0 := ring.Now()
				keep := process(0, item)
				p1 := ring.Now()
				sl.procNS += p1 - p0
				if keep && tap != nil {
					tapped++
					tap.Sink(item)
					p2 := ring.Now()
					sl.tapNS += p2 - p1
					sl.tapped++
					tapWall += time.Duration(p2 - p1)
				}
				if sl.items++; sl.items >= sliceLimit {
					sl.flush(ring, feedStage, tap != nil, ring.Now())
				}
			})
		})
		if ring != nil && sl.items > 0 {
			sl.flush(ring, feedStage, tap != nil, ring.Now())
		}
		st.ShardBusy[0] = time.Since(t0)
		st.AddStage("analyze", st.ShardItems[0], st.ShardBusy[0]-tapWall)
		if tap != nil {
			st.AddStage("tap", tapped, tapWall)
		}
		st.Finish()
		return st
	}

	batch := cfg.batchSize()
	var tapChans, freeChans []chan []T
	if tap != nil {
		tapChans = make([]chan []T, n)
		freeChans = make([]chan []T, n)
		for i := range tapChans {
			tapChans[i] = make(chan []T, cfg.tapDepth())
			// One slot beyond the tap depth so returning a drained
			// batch never blocks the merge goroutine.
			freeChans[i] = make(chan []T, cfg.tapDepth()+1)
		}
	}

	// Each worker owns one telemetry bank — plain counters, no atomics;
	// the wg.Wait below orders every write before the merge read.
	workerTel := make([]telemetry.Engine, n)

	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func(i int) {
			defer wg.Done()
			pprof.Do(context.Background(), pprof.Labels("shard", strconv.Itoa(i), "stage", "analyze"), func(context.Context) {
				tel := &workerTel[i]
				start := time.Now()
				ring := rec.ShardRing(i)
				var sl spanSlice
				sl.start = ring.Now()
				var buf []T
				nextBuf := func() []T {
					// Reuse a batch the merge side has drained; allocate
					// only while the recycling loop is still priming.
					select {
					case b := <-freeChans[i]:
						tel.BufReuses++
						return b
					default:
						tel.BufAllocs++
						return make([]T, 0, batch)
					}
				}
				sendBatch := func() {
					tel.TapBatches++
					tel.TapBatchFill.Observe(uint64(len(buf)))
					if q := uint64(len(tapChans[i])); q > tel.QueueHighWater {
						tel.QueueHighWater = q
					}
					tapChans[i] <- buf
					buf = nil
				}
				feeds[i](func(item T) {
					st.ShardItems[i]++
					var keep bool
					if ring == nil {
						keep = process(i, item)
					} else {
						p0 := ring.Now()
						keep = process(i, item)
						sl.procNS += ring.Now() - p0
						if sl.items++; sl.items >= sliceLimit {
							now := ring.Now()
							sl.flush(ring, feedStage, false, now)
							if tapChans != nil {
								ring.Sample(telemetry.CounterQueueDepth, now, uint64(len(tapChans[i])))
							}
						}
					}
					if tapChans != nil && keep {
						if buf == nil {
							buf = nextBuf()
						}
						buf = append(buf, item)
						if len(buf) >= batch {
							sendBatch()
						}
					}
				})
				if ring != nil && sl.items > 0 {
					sl.flush(ring, feedStage, false, ring.Now())
				}
				if tapChans != nil {
					if len(buf) > 0 {
						sendBatch()
					}
					close(tapChans[i])
				}
				st.ShardBusy[i] = time.Since(start)
			})
		}(i)
	}

	var tapped uint64
	if tap != nil {
		pprof.Do(context.Background(), pprof.Labels("shard", "merge", "stage", "merge"), func(context.Context) {
			tapped = mergeTap(tapChans, freeChans, tap, rec.DriverRing(), sliceLimit)
		})
	}
	wg.Wait()
	for i := range workerTel {
		st.Engine.Merge(&workerTel[i])
	}

	wall := time.Since(t0)
	st.AddStage("analyze", st.Items(), wall)
	if tap != nil {
		st.AddStage("tap", tapped, wall)
	}
	st.Finish()
	return st
}

// spanSlice accumulates one in-progress recorder slice on a worker:
// wall window start, time spent inside process, and (sequential path
// only) time inside the tap sink. flush closes the slice's spans and
// re-anchors it at now.
type spanSlice struct {
	start  int64
	procNS int64
	tapNS  int64
	items  uint64
	tapped uint64
}

func (s *spanSlice) flush(ring *telemetry.Ring, feedStage telemetry.Stage, withTap bool, now int64) {
	ring.Span(telemetry.StageAnalyze, s.start, s.procNS, s.items)
	feedNS := (now - s.start) - s.procNS - s.tapNS
	if feedNS < 0 {
		feedNS = 0
	}
	ring.Span(feedStage, s.start, feedNS, s.items)
	if withTap {
		ring.Span(telemetry.StageMerge, s.start, s.tapNS, s.tapped)
	}
	*s = spanSlice{start: now}
}

// mergeTap performs the streaming k-way merge of the per-shard tap
// streams. Each stream arrives batched and already ordered by
// tap.Less; a loser tree over the stream heads emits the least head in
// O(log shards) comparisons per item (the previous linear min-scan
// paid O(shards) every item), refilling a stream's batch (blocking,
// which backpressures nothing — the channel already holds data or the
// shard is ahead) as it drains. Drained batch buffers are recycled to
// their shard through free. Memory is bounded by shards × batch items.
// With a recorder, every sliceLimit emitted items close one merge span
// on the driver ring (span wall includes waiting on shard channels —
// the merge track shows occupancy, not pure CPU).
func mergeTap[T any](chans, free []chan []T, tap *Tap[T], ring *telemetry.Ring, sliceLimit uint64) uint64 {
	n := len(chans)
	heads := make([][]T, n) // current batch per shard; nil when closed
	pos := make([]int, n)
	live := 0
	for i, ch := range chans {
		if b, ok := <-ch; ok {
			heads[i] = b
			live++
		}
	}
	var emitted uint64
	sliceStart := ring.Now()
	var sliceItems uint64
	record := func() {
		if ring == nil {
			return
		}
		if sliceItems++; sliceItems >= sliceLimit {
			now := ring.Now()
			ring.Span(telemetry.StageMerge, sliceStart, now-sliceStart, sliceItems)
			sliceStart, sliceItems = now, 0
		}
	}
	defer func() {
		if ring != nil && sliceItems > 0 {
			now := ring.Now()
			ring.Span(telemetry.StageMerge, sliceStart, now-sliceStart, sliceItems)
		}
	}()

	// advance consumes the current head of stream w, recycling and
	// refilling its batch as needed. Reports whether the stream closed.
	advance := func(w int32) bool {
		pos[w]++
		if pos[w] < len(heads[w]) {
			return false
		}
		select { // hand the drained buffer back to the shard worker
		case free[w] <- heads[w][:0]:
		default:
		}
		pos[w] = 0
		if b, ok := <-chans[w]; ok {
			heads[w] = b
			return false
		}
		heads[w] = nil
		live--
		return true
	}

	if n == 1 {
		// Degenerate single-stream case: no tournament needed.
		for live > 0 {
			tap.Sink(heads[0][pos[0]])
			emitted++
			record()
			advance(0)
		}
		return emitted
	}

	// less is a strict total order over stream indices: item order
	// first, then shard index — equal items must share a shard per the
	// Tap contract, but the explicit tie-break keeps the merge
	// deterministic even for contract-violating inputs. Closed streams
	// sort last.
	less := func(a, b int32) bool {
		ca, cb := heads[a] == nil, heads[b] == nil
		if ca || cb {
			if ca != cb {
				return cb
			}
			return a < b
		}
		x, y := heads[a][pos[a]], heads[b][pos[b]]
		if tap.Less(x, y) {
			return true
		}
		if tap.Less(y, x) {
			return false
		}
		return a < b
	}

	// Each advance of the champion costs ⌈log2 n⌉ comparisons.
	tree := losertree.New(n, less)
	for live > 0 {
		w := tree.Winner()
		tap.Sink(heads[w][pos[w]])
		emitted++
		record()
		advance(w)
		tree.Fix(w)
	}
	return emitted
}
