package engine

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// feedOf replays a fixed int slice.
func feedOf(items ...int) Feed[int] {
	return func(emit func(int)) {
		for _, v := range items {
			emit(v)
		}
	}
}

func TestRunInlineSequential(t *testing.T) {
	var got []int
	st := Run(Config{}, []Feed[int]{feedOf(3, 1, 4, 1, 5)},
		func(shard int, v int) bool {
			if shard != 0 {
				t.Fatalf("shard %d on single-feed run", shard)
			}
			got = append(got, v)
			return true
		}, nil)
	if len(got) != 5 || st.Items() != 5 || st.Workers != 1 {
		t.Fatalf("got %v items=%d workers=%d", got, st.Items(), st.Workers)
	}
	if st.StageNamed("analyze").Items != 5 {
		t.Fatalf("analyze stage = %+v", st.StageNamed("analyze"))
	}
}

func TestRunShardIsolation(t *testing.T) {
	const shards = 4
	feeds := make([]Feed[int], shards)
	for i := range feeds {
		i := i
		feeds[i] = func(emit func(int)) {
			for j := 0; j < 1000; j++ {
				emit(i) // each feed emits its own shard index
			}
		}
	}
	var wrong atomic.Int64
	st := Run(Config{Workers: shards}, feeds, func(shard int, v int) bool {
		if v != shard {
			wrong.Add(1)
		}
		return false
	}, nil)
	if wrong.Load() != 0 {
		t.Fatalf("%d items processed on the wrong shard", wrong.Load())
	}
	if st.Items() != shards*1000 {
		t.Fatalf("items = %d", st.Items())
	}
	for i, n := range st.ShardItems {
		if n != 1000 {
			t.Fatalf("shard %d processed %d items", i, n)
		}
	}
}

// TestTapMergeOrder checks the k-way tap merge restores the canonical
// global order from per-shard sorted streams, for several worker
// counts and batch sizes (forcing batch boundaries mid-stream).
func TestTapMergeOrder(t *testing.T) {
	// Items 0..9999 dealt round-robin-ish to shards by modulo; each
	// shard stream is increasing, the merged stream must be 0..9999.
	const total = 10000
	for _, cfg := range []Config{
		{Workers: 2},
		{Workers: 3, BatchSize: 7},
		{Workers: 8, BatchSize: 1, TapDepth: 1},
	} {
		feeds := make([]Feed[int], cfg.Workers)
		for i := range feeds {
			i := i
			feeds[i] = func(emit func(int)) {
				for v := i; v < total; v += cfg.Workers {
					emit(v)
				}
			}
		}
		var merged []int
		st := Run(cfg, feeds,
			func(shard, v int) bool { return v%3 != 0 }, // tap a subset
			&Tap[int]{
				Less: func(a, b int) bool { return a < b },
				Sink: func(v int) { merged = append(merged, v) },
			})
		if !sort.IntsAreSorted(merged) {
			t.Fatalf("cfg %+v: merged stream out of order", cfg)
		}
		want := 0
		for v := 0; v < total; v++ {
			if v%3 != 0 {
				want++
			}
		}
		if len(merged) != want {
			t.Fatalf("cfg %+v: merged %d items, want %d", cfg, len(merged), want)
		}
		if st.StageNamed("tap").Items != uint64(want) {
			t.Fatalf("tap stage = %+v", st.StageNamed("tap"))
		}
	}
}

// TestTapEqualsSequential is the engine-level determinism property:
// the tapped stream for any worker count equals the 1-worker stream,
// provided equal-comparing items share a shard.
func TestTapEqualsSequential(t *testing.T) {
	type item struct{ ts, src int }
	// Build per-src streams with colliding timestamps (same src only).
	streams := map[int][]item{}
	for src := 0; src < 13; src++ {
		ts := src % 3
		for j := 0; j < 50; j++ {
			streams[src] = append(streams[src], item{ts: ts, src: src})
			if j%4 != 0 {
				ts += j % 5 // repeated timestamps within a src
			}
		}
	}
	less := func(a, b item) bool {
		if a.ts != b.ts {
			return a.ts < b.ts
		}
		return a.src < b.src
	}
	render := func(workers int) string {
		// Partition srcs over shards, k-way merge within each shard
		// (stable for equal keys) to mimic the ibr shard mergers.
		groups := make([][]item, workers)
		for src := 0; src < 13; src++ {
			g := src % workers
			merged := append(groups[g], streams[src]...)
			sort.SliceStable(merged, func(i, j int) bool { return less(merged[i], merged[j]) })
			groups[g] = merged
		}
		feeds := make([]Feed[item], workers)
		for i := range feeds {
			i := i
			feeds[i] = func(emit func(item)) {
				for _, v := range groups[i] {
					emit(v)
				}
			}
		}
		var b strings.Builder
		Run(Config{Workers: workers, BatchSize: 3}, feeds,
			func(int, item) bool { return true },
			&Tap[item]{Less: less, Sink: func(v item) { fmt.Fprintf(&b, "%d/%d ", v.ts, v.src) }})
		return b.String()
	}
	want := render(1)
	for _, w := range []int{2, 3, 8} {
		if got := render(w); got != want {
			t.Fatalf("workers=%d tap stream diverged", w)
		}
	}
}

// TestSequentialTapStageTiming guards the workers=1 stats fix: the
// "tap" stage must report the sink's own wall time, not mirror the
// whole analyze pass, and the two stages must partition the shard's
// busy time.
func TestSequentialTapStageTiming(t *testing.T) {
	var tapped int
	st := Run(Config{}, []Feed[int]{feedOf(1, 2, 3, 4, 5, 6)},
		func(shard, v int) bool { return v%2 == 0 },
		&Tap[int]{
			Less: func(a, b int) bool { return a < b },
			Sink: func(int) { tapped++; busyWait() },
		})
	if tapped != 3 {
		t.Fatalf("tapped = %d", tapped)
	}
	analyze, tap := st.StageNamed("analyze"), st.StageNamed("tap")
	if tap.Items != 3 || analyze.Items != 6 {
		t.Fatalf("stage items: analyze %d, tap %d", analyze.Items, tap.Items)
	}
	if tap.Wall <= 0 {
		t.Fatal("tap stage wall not measured")
	}
	if tap.Wall == analyze.Wall {
		t.Fatal("tap stage duplicates the analyze duration (double-counted wall time)")
	}
	if got, want := analyze.Wall+tap.Wall, st.ShardBusy[0]; got != want {
		t.Fatalf("stages do not partition shard busy time: %v + %v != %v", analyze.Wall, tap.Wall, want)
	}
}

// busyWait burns a little real time so the tap sink duration is
// measurable on coarse clocks.
func busyWait() {
	deadline := time.Now().Add(200 * time.Microsecond)
	for time.Now().Before(deadline) {
	}
}

func TestStatsString(t *testing.T) {
	st := NewStats(2)
	st.ShardItems = []uint64{5, 7}
	st.AddStage("analyze", 12, 1000)
	st.Finish()
	out := st.String()
	for _, want := range []string{"2 workers", "12 items", "analyze"} {
		if !strings.Contains(out, want) {
			t.Errorf("stats string missing %q:\n%s", want, out)
		}
	}
	if st.Items() != 12 {
		t.Errorf("items = %d", st.Items())
	}
}

func TestResolveWorkers(t *testing.T) {
	if got := (Config{Workers: 3}).ResolveWorkers(); got != 3 {
		t.Errorf("explicit workers = %d", got)
	}
	if got := (Config{}).ResolveWorkers(); got < 1 {
		t.Errorf("default workers = %d", got)
	}
	if got := (Config{Workers: -2}).ResolveWorkers(); got != 1 {
		t.Errorf("negative workers = %d", got)
	}
}
