// Scenarios: drive the pipeline with declarative workloads instead of
// the hard-coded paper month (internal/scenario, DESIGN.md §11). The
// walkthrough runs a built-in scenario, contrasts it with its
// Retry-mitigated counterpart, then compiles a custom spec authored
// inline — the same TOML container `cmd/quicsand -scenario` loads from
// a file.
package main

import (
	"fmt"
	"log"

	"quicsand"
	"quicsand/internal/scenario"
)

// customSpec is a small two-phase workload: an escalating QUIC flood
// against census-unknown content hosts over a background scan wave.
const customSpec = `
name = "escalating-unknowns"
description = "Ramp-shaped QUIC floods on census-unknown hosts over a draft-29 scan wave"

[[phases]]
kind = "scan"
sources = 2000
versions = [{version = "draft-29", share = 0.7}, {version = "v1", share = 0.3}]
diurnal = true

[[phases]]
kind = "flood"
label = "ramp"
vector = "quic"
attacks = 800
scid_policy = "fresh"
amplification = 2.0
[phases.victims]
org = "unknown"
size = 90
skew = 1.3
[phases.rate]
base_pps = 0.3
peak_pkts = 180
shape = "ramp"
`

func run(sc *scenario.Scenario) *quicsand.Analysis {
	a, err := quicsand.Run(quicsand.Config{
		Seed: 42, Scale: 0.01, SkipResearch: true, Scenario: sc,
	})
	if err != nil {
		log.Fatal(err)
	}
	return a
}

func main() {
	lines, err := scenario.Describe()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("built-in scenarios:")
	for _, line := range lines {
		fmt.Println(" ", line)
	}

	// 1. The un-mitigated handshake-flooding baseline vs. the same
	// pressure behind stateless Retry challenges: the message mix and
	// amplification collapse is measured from the packet stream.
	for _, name := range []string{"handshake-flood-qfam", "retry-mitigated-flood"} {
		sc, err := scenario.Builtin(name)
		if err != nil {
			log.Fatal(err)
		}
		a := run(sc)
		ini, hs, other := a.MessageMix()
		fmt.Printf("\n%s:\n  %d QUIC attacks, message mix Initial %.0f%% / Handshake %.0f%% / other %.0f%%\n",
			name, len(a.QUICDetector.Attacks), ini, hs, other)
	}

	// 2. A custom spec: Load validates (unknown knobs, NaN rates and
	// out-of-month windows are errors), Run compiles and analyzes.
	sc, err := scenario.Load([]byte(customSpec))
	if err != nil {
		log.Fatal(err)
	}
	a := run(sc)
	fmt.Printf("\n%s:\n", sc.Name)
	fmt.Println(a.ScenarioInfo())
	fmt.Println(a.Headline())
}
