package scenario

import (
	"math"
	"strings"
	"testing"

	"quicsand/internal/ibr"
	"quicsand/internal/telescope"
)

// TestBuiltinsLoadAndCompile pins the registry: every built-in parses,
// validates, self-names consistently, and compiles into a non-empty
// schedule that actually streams packets.
func TestBuiltinsLoadAndCompile(t *testing.T) {
	names := Builtins()
	if len(names) < 5 {
		t.Fatalf("want >= 5 built-ins, have %v", names)
	}
	for _, name := range names {
		sc, err := Builtin(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if sc.Name != name {
			t.Errorf("%s: spec names itself %q", name, sc.Name)
		}
		if sc.Description == "" {
			t.Errorf("%s: missing description", name)
		}
		g, err := Compile(sc, ibr.Config{Seed: 5, Scale: 0.002, SkipResearch: true})
		if err != nil {
			t.Fatalf("%s: compile: %v", name, err)
		}
		n := 0
		g.Run(func(*telescope.Packet) { n++ })
		if n == 0 {
			t.Errorf("%s: compiled month is empty", name)
		}
	}
}

// TestBuiltinGroundTruth spot-checks that compilation fills the ground
// truth the GreyNoise and census joins consume.
func TestBuiltinGroundTruth(t *testing.T) {
	sc, err := Builtin("handshake-flood-qfam")
	if err != nil {
		t.Fatal(err)
	}
	g, err := Compile(sc, ibr.Config{Seed: 5, Scale: 0.01, SkipResearch: true})
	if err != nil {
		t.Fatal(err)
	}
	if g.Truth.QUICAttacks == 0 || len(g.Truth.QUICVictims) == 0 {
		t.Errorf("no scheduled QUIC attacks in truth: %+v", g.Truth)
	}
	if len(g.Truth.BotAddrs) == 0 {
		t.Error("recon scan scheduled no bots")
	}
	for v, org := range g.Truth.QUICVictims {
		if org == "" {
			t.Errorf("victim %v has no org label", v)
		}
	}

	mv, err := Builtin("multi-vector-burst")
	if err != nil {
		t.Fatal(err)
	}
	gm, err := Compile(mv, ibr.Config{Seed: 5, Scale: 0.01, SkipResearch: true})
	if err != nil {
		t.Fatal(err)
	}
	if gm.Truth.Concurrent+gm.Truth.Sequential == 0 {
		t.Error("paired phase scheduled no concurrent/sequential partners")
	}
	if gm.Truth.CommonAttacks == 0 {
		t.Error("common-mix floor scheduled no TCP/ICMP attacks")
	}
}

// TestLoadJSON exercises the JSON path with the same strictness rules
// as TOML.
func TestLoadJSON(t *testing.T) {
	sc, err := Load([]byte(`{
		"name": "j",
		"phases": [
			{"kind": "flood", "vector": "quic", "attacks": 10,
			 "victims": {"org": "Google", "size": 4},
			 "versions": [{"version": "v1", "share": 1}]}
		]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if sc.Phases[0].Victims.Org != "Google" {
		t.Errorf("victims mis-parsed: %+v", sc.Phases[0].Victims)
	}
	if _, err := Load([]byte(`{"name": "j", "phases": [{"kind": "flood", "vector": "quic", "attacks": 1, "victims": {"size": 1}, "typo_knob": 3}]}`)); err == nil {
		t.Error("unknown JSON field accepted")
	}
	if _, err := Load([]byte(`{"name": "j", "phases": []} trailing`)); err == nil {
		t.Error("trailing JSON data accepted")
	}
}

// TestLoadRejectsMalformed is the spec-loader error matrix: every
// malformed document must error (and never panic — FuzzLoad widens
// this to arbitrary bytes).
func TestLoadRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"no name":                "description = \"x\"\n[[phases]]\nkind = \"misconfig\"\nsources = 1",
		"zero phases":            "name = \"x\"",
		"paper + phases":         "name = \"x\"\npaper = true\n[[phases]]\nkind = \"misconfig\"\nsources = 1",
		"unknown kind":           "name = \"x\"\n[[phases]]\nkind = \"ddos\"",
		"unknown knob":           "name = \"x\"\n[[phases]]\nkind = \"scan\"\nsources = 5\nwarp_factor = 9",
		"nan rate":               "name = \"x\"\n[[phases]]\nkind = \"scan\"\nsources = 5\nvisits_mean = nan",
		"inf rate":               "name = \"x\"\n[[phases]]\nkind = \"scan\"\nsources = 5\nvisits_mean = inf",
		"negative rate":          "name = \"x\"\n[[phases]]\nkind = \"scan\"\nsources = 5\nvisits_mean = -2",
		"zero sources":           "name = \"x\"\n[[phases]]\nkind = \"scan\"\nsources = 0",
		"zero attacks":           "name = \"x\"\n[[phases]]\nkind = \"flood\"\nvector = \"quic\"\n[phases.victims]\nsize = 3",
		"no victims":             "name = \"x\"\n[[phases]]\nkind = \"flood\"\nvector = \"quic\"\nattacks = 5",
		"bad vector":             "name = \"x\"\n[[phases]]\nkind = \"flood\"\nvector = \"smtp\"\nattacks = 5\n[phases.victims]\nsize = 3",
		"bad version":            "name = \"x\"\n[[phases]]\nkind = \"scan\"\nsources = 5\nversions = [{version = \"h3-27\", share = 1}]",
		"zero share":             "name = \"x\"\n[[phases]]\nkind = \"scan\"\nsources = 5\nversions = [{version = \"v1\", share = 0}]",
		"window overrun":         "name = \"x\"\n[[phases]]\nkind = \"scan\"\nsources = 5\nstart_sec = 2000000\ndur_sec = 2000000",
		"sweep default overrun":  "name = \"x\"\n[[phases]]\nkind = \"research-scan\"\nsweeps = 1\nstart_sec = 2588400\ndur_sec = 3600",
		"sweep explicit overrun": "name = \"x\"\n[[phases]]\nkind = \"research-scan\"\nsweeps = 1\ndur_sec = 7200\nsweep_hours = 8",
		"diurnal with window":    "name = \"x\"\n[[phases]]\nkind = \"scan\"\nsources = 5\ndiurnal = true\ndur_sec = 864000",
		"short scan window":      "name = \"x\"\n[[phases]]\nkind = \"scan\"\nsources = 5\nstart_sec = 100\ndur_sec = 50",
		"short misconfig window": "name = \"x\"\n[[phases]]\nkind = \"misconfig\"\nsources = 5\nstart_sec = 864000\ndur_sec = 60",
		"negative peak":          "name = \"x\"\n[[phases]]\nkind = \"flood\"\nvector = \"quic\"\nattacks = 5\n[phases.victims]\nsize = 3\n[phases.rate]\npeak_pkts = -260",
		"negative pkts":          "name = \"x\"\n[[phases]]\nkind = \"scan\"\nsources = 5\npackets_per_visit = -3",
		"negative tag share":     "name = \"x\"\n[[phases]]\nkind = \"scan\"\nsources = 5\ntag_share = -0.1",
		"start past end":         "name = \"x\"\n[[phases]]\nkind = \"scan\"\nsources = 5\nstart_sec = 99999999",
		"short flood":            "name = \"x\"\n[[phases]]\nkind = \"flood\"\nvector = \"quic\"\nattacks = 5\ndur_sec = 60\n[phases.victims]\nsize = 3",
		"bad scid":               "name = \"x\"\n[[phases]]\nkind = \"flood\"\nvector = \"quic\"\nattacks = 5\nscid_policy = \"entropic\"\n[phases.victims]\nsize = 3",
		"bad shape":              "name = \"x\"\n[[phases]]\nkind = \"flood\"\nvector = \"quic\"\nattacks = 5\n[phases.victims]\nsize = 3\n[phases.rate]\nshape = \"sawtooth\"",
		"pair overflow":          "name = \"x\"\n[[phases]]\nkind = \"flood\"\nvector = \"quic\"\nattacks = 5\npair = {concurrent_share = 0.9, sequential_share = 0.4}\n[phases.victims]\nsize = 3",
		"pair non-quic":          "name = \"x\"\n[[phases]]\nkind = \"flood\"\nvector = \"tcp\"\nattacks = 5\npair = {concurrent_share = 0.5, sequential_share = 0.1}\n[phases.victims]\nsize = 3",
		"amp overflow":           "name = \"x\"\n[[phases]]\nkind = \"flood\"\nvector = \"quic\"\nattacks = 5\namplification = 1000\n[phases.victims]\nsize = 3",
		"dup key":                "name = \"x\"\nname = \"y\"\n[[phases]]\nkind = \"misconfig\"\nsources = 1",
		"dup table":              "name = \"x\"\n[[phases]]\nkind = \"flood\"\nvector = \"quic\"\nattacks = 5\n[phases.victims]\nsize = 3\n[phases.victims]\norg = \"Google\"",
		"array extend":           "name = \"x\"\nphases = []\n[[phases]]\nkind = \"misconfig\"\nsources = 1",
		"inline extend":          "name = \"x\"\n[[phases]]\nkind = \"flood\"\nvector = \"quic\"\nattacks = 5\nrate = {base_pps = 0.5}\n[phases.rate]\npeak_pkts = 7\n[phases.victims]\nsize = 3",
		"tcp retry":              "name = \"x\"\n[[phases]]\nkind = \"flood\"\nvector = \"tcp\"\nattacks = 5\nretry_mitigation = true\n[phases.victims]\nsize = 3",
		"tcp scid":               "name = \"x\"\n[[phases]]\nkind = \"flood\"\nvector = \"icmp\"\nattacks = 5\nscid_policy = \"fresh\"\n[phases.victims]\nsize = 3",
		"tcp versions":           "name = \"x\"\n[[phases]]\nkind = \"flood\"\nvector = \"common-mix\"\nattacks = 5\nversions = [{version = \"v1\", share = 1}]\n[phases.victims]\nsize = 3",
		"foreign knob":           "name = \"x\"\n[[phases]]\nkind = \"scan\"\nsources = 5\nattacks = 1400\n[phases.victims]\nsize = 3",
		"misconfig knob":         "name = \"x\"\n[[phases]]\nkind = \"misconfig\"\nsources = 5\ndiurnal = true",
		"sub-unity amp":          "name = \"x\"\n[[phases]]\nkind = \"flood\"\nvector = \"quic\"\nattacks = 5\namplification = 0.5\n[phases.victims]\nsize = 3",
		"scid over 1":            "name = \"x\"\n[[phases]]\nkind = \"flood\"\nvector = \"quic\"\nattacks = 5\nscid_ratio = 1.5\n[phases.victims]\nsize = 3",
		"bad toml":               "name = \"x\"\n[[phases]\nkind = \"misconfig\"",
		"bad value":              "name = \"x\"\n[[phases]]\nkind = \"misconfig\"\nsources = five",
		"unterminated":           "name = \"unterminated",
	}
	for label, spec := range cases {
		if _, err := Load([]byte(spec)); err == nil {
			t.Errorf("%s: accepted:\n%s", label, spec)
		}
	}
}

// TestValidateNonFinite covers programmatic scenarios (no loader in
// between): NaN and Inf knobs must fail validation directly.
func TestValidateNonFinite(t *testing.T) {
	for _, v := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		sc := &Scenario{Name: "x", Phases: []Phase{{
			Kind: KindFlood, Vector: "quic", Attacks: 5,
			Victims: VictimPool{Size: 3},
			Rate:    RateCurve{BasePPS: v},
		}}}
		if err := sc.Validate(); err == nil {
			t.Errorf("BasePPS = %v validated", v)
		}
	}
	sc := &Scenario{Name: "x", Phases: []Phase{{Kind: KindScan, Sources: 2, StartSec: math.NaN()}}}
	if err := sc.Validate(); err == nil {
		t.Error("NaN start_sec validated")
	}
}

// TestTagShareZeroDistinct pins the unset-vs-zero contract: an
// explicit tag_share = 0.0 schedules a wave invisible to the GreyNoise
// join, while omitting the knob keeps the paper's 2.3 % default.
func TestTagShareZeroDistinct(t *testing.T) {
	compileScan := func(spec string) int {
		t.Helper()
		sc, err := Load([]byte(spec))
		if err != nil {
			t.Fatal(err)
		}
		g, err := Compile(sc, ibr.Config{Seed: 9, Scale: 0.5, SkipResearch: true})
		if err != nil {
			t.Fatal(err)
		}
		if len(g.Truth.BotAddrs) == 0 {
			t.Fatal("no bots scheduled")
		}
		return len(g.Truth.TaggedBots)
	}
	zero := compileScan("name = \"z\"\n[[phases]]\nkind = \"scan\"\nsources = 2000\ntag_share = 0.0")
	if zero != 0 {
		t.Errorf("tag_share = 0.0 tagged %d bots, want 0", zero)
	}
	def := compileScan("name = \"d\"\n[[phases]]\nkind = \"scan\"\nsources = 2000")
	if def == 0 {
		t.Error("omitted tag_share tagged no bots (2.3% default lost)")
	}
}

// TestSkipResearchOnlyDropsSweeps pins the paper schedule's
// SkipResearch contract on the scenario path: skipping must remove the
// research sweeps and nothing else — the plan methods fork the root
// RNG before their guards, so every later phase draws identically.
func TestSkipResearchOnlyDropsSweeps(t *testing.T) {
	compileWith := func(skip bool) *ibr.Generator {
		sc, err := Builtin("versionneg-scan-campaign")
		if err != nil {
			t.Fatal(err)
		}
		g, err := Compile(sc, ibr.Config{Seed: 9, Scale: 0.005, SkipResearch: skip})
		if err != nil {
			t.Fatal(err)
		}
		return g
	}
	full := compileWith(false)
	skipped := compileWith(true)
	if len(full.Truth.ResearchHosts) == 0 {
		t.Fatal("full run scheduled no research hosts")
	}
	if len(skipped.Truth.ResearchHosts) != 0 {
		t.Error("skip-research still scheduled research hosts")
	}
	if len(full.Truth.BotAddrs) == 0 || len(full.Truth.BotAddrs) != len(skipped.Truth.BotAddrs) {
		t.Fatalf("bot counts diverged: %d vs %d", len(full.Truth.BotAddrs), len(skipped.Truth.BotAddrs))
	}
	for i := range full.Truth.BotAddrs {
		if full.Truth.BotAddrs[i] != skipped.Truth.BotAddrs[i] {
			t.Fatalf("bot %d diverged: %v vs %v — SkipResearch reshuffled later phases", i, full.Truth.BotAddrs[i], skipped.Truth.BotAddrs[i])
		}
	}
	if full.Truth.MisconfSources != skipped.Truth.MisconfSources {
		t.Errorf("misconfig sources diverged: %d vs %d", full.Truth.MisconfSources, skipped.Truth.MisconfSources)
	}
}

// TestSCIDRatioZeroDistinct pins the unset-vs-zero contract for the
// SCID override: an explicit 0 (never fresh) must load and survive to
// compilation instead of being swallowed by the policy default.
func TestSCIDRatioZeroDistinct(t *testing.T) {
	sc, err := Load([]byte("name = \"z\"\n[[phases]]\nkind = \"flood\"\nvector = \"quic\"\nattacks = 5\nscid_ratio = 0.0\n[phases.victims]\nsize = 3"))
	if err != nil {
		t.Fatal(err)
	}
	if sc.Phases[0].SCIDRatio == nil || *sc.Phases[0].SCIDRatio != 0 {
		t.Fatalf("explicit scid_ratio = 0 lost: %+v", sc.Phases[0].SCIDRatio)
	}
	if got := scidRatioOf(&sc.Phases[0]); got != 0 {
		t.Errorf("scidRatioOf = %v, want 0 (explicit zero must not fall back to the policy default)", got)
	}
	unset := &Phase{Kind: KindFlood}
	if got := scidRatioOf(unset); got != 0.6 {
		t.Errorf("unset scid_ratio resolved to %v, want the 0.6 default", got)
	}
}

// TestMisconfigWindow pins that a misconfig phase's window actually
// bounds its responder visits (it was once silently ignored).
func TestMisconfigWindow(t *testing.T) {
	const startSec, durSec = 864000, 172800 // days 10-12
	sc, err := Load([]byte("name = \"w\"\n[[phases]]\nkind = \"misconfig\"\nsources = 3000\nstart_sec = 864000\ndur_sec = 172800"))
	if err != nil {
		t.Fatal(err)
	}
	g, err := Compile(sc, ibr.Config{Seed: 3, Scale: 0.01, SkipResearch: true})
	if err != nil {
		t.Fatal(err)
	}
	lo := telescope.TS(telescope.MeasurementStart) + telescope.Timestamp(startSec*1000)
	hi := telescope.TS(telescope.MeasurementStart) + telescope.Timestamp((startSec+durSec)*1000)
	n := 0
	g.Run(func(p *telescope.Packet) {
		n++
		if p.TS < lo || p.TS > hi {
			t.Fatalf("responder packet at %d outside window [%d, %d]", p.TS, lo, hi)
		}
	})
	if n == 0 {
		t.Fatal("no responder packets")
	}
}

// TestCompileUnknownOrg: victim pools resolve against the census at
// compile time; a missing organisation is a compile error, not an
// empty month.
func TestCompileUnknownOrg(t *testing.T) {
	sc := &Scenario{Name: "x", Phases: []Phase{{
		Kind: KindFlood, Vector: "quic", Attacks: 5,
		Victims: VictimPool{Org: "Altavista", Size: 3},
	}}}
	if _, err := Compile(sc, ibr.Config{Seed: 1, Scale: 0.01}); err == nil ||
		!strings.Contains(err.Error(), "Altavista") {
		t.Errorf("unknown org compiled: %v", err)
	}
}

// TestTOMLParserShapes locks the subset parser's structural behavior.
func TestTOMLParserShapes(t *testing.T) {
	tree, err := parseTOML([]byte(`
# comment
name = "s" # trailing comment
flag = true
n = 42
f = 2.5
arr = [1, 2, 3]
mixed = [{a = 1}, {a = 2}]

[top]
k = "v"

[top.nested]
k2 = "v2"

[[items]]
x = 1
[items.sub]
y = 2

[[items]]
x = 3
`))
	if err != nil {
		t.Fatal(err)
	}
	if tree["name"] != "s" || tree["flag"] != true || tree["n"] != int64(42) || tree["f"] != 2.5 {
		t.Errorf("scalars mis-parsed: %+v", tree)
	}
	top := tree["top"].(map[string]any)
	if top["k"] != "v" || top["nested"].(map[string]any)["k2"] != "v2" {
		t.Errorf("tables mis-parsed: %+v", top)
	}
	items := tree["items"].([]any)
	if len(items) != 2 {
		t.Fatalf("array-of-tables mis-parsed: %+v", items)
	}
	if items[0].(map[string]any)["sub"].(map[string]any)["y"] != int64(2) {
		t.Errorf("sub-table of array element mis-parsed: %+v", items[0])
	}
	if items[1].(map[string]any)["x"] != int64(3) {
		t.Errorf("second array element mis-parsed: %+v", items[1])
	}
}

// TestWindowResolution checks the DurSec-0 "rest of month" semantics.
func TestWindowResolution(t *testing.T) {
	p := Phase{StartSec: 86400}
	start, dur := p.Window()
	if start != 86400 || dur != MonthSeconds()-86400 {
		t.Errorf("window = (%v, %v)", start, dur)
	}
}
