package telemetry

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// TestHistBuckets pins the power-of-two bucketing: zero lands in
// bucket 0, each v in [2^(i-1), 2^i) in bucket i, and everything at or
// beyond 2^14 in the last bucket.
func TestHistBuckets(t *testing.T) {
	cases := []struct {
		v      uint64
		bucket int
	}{
		{0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {7, 3}, {8, 4},
		{1 << 13, 14}, {1<<14 - 1, 14}, {1 << 14, 15}, {1 << 40, 15},
	}
	for _, c := range cases {
		var h Hist
		h.Observe(c.v)
		for i, n := range h.Buckets {
			want := uint64(0)
			if i == c.bucket {
				want = 1
			}
			if n != want {
				t.Errorf("Observe(%d): bucket %d = %d, want %d", c.v, i, n, want)
			}
		}
		if h.Count != 1 || h.Sum != c.v {
			t.Errorf("Observe(%d): count=%d sum=%d", c.v, h.Count, h.Sum)
		}
	}
}

func TestHistMergeAndMean(t *testing.T) {
	var a, b Hist
	a.Observe(4)
	a.Observe(8)
	b.Observe(0)
	b.Observe(12)

	var empty Hist
	if got := empty.Mean(); got != 0 {
		t.Errorf("empty Mean = %g, want 0", got)
	}

	a.Merge(&b)
	if a.Count != 4 || a.Sum != 24 {
		t.Fatalf("merged count=%d sum=%d, want 4/24", a.Count, a.Sum)
	}
	if got := a.Mean(); got != 6 {
		t.Errorf("Mean = %g, want 6", got)
	}
}

// fillSnapshot produces a snapshot with every field distinct, keyed off
// base, so merge tests notice any dropped or swapped field.
func fillSnapshot(base uint64) *Snapshot {
	s := &Snapshot{Workers: int(base % 7), ShardPackets: []uint64{base, base + 1}}
	v := reflect.ValueOf(s).Elem()
	n := base
	var fill func(reflect.Value)
	fill = func(v reflect.Value) {
		for i := 0; i < v.NumField(); i++ {
			f := v.Field(i)
			switch f.Kind() {
			case reflect.Uint64:
				n++
				f.SetUint(n)
			case reflect.Struct:
				fill(f)
			case reflect.Array:
				for j := 0; j < f.Len(); j++ {
					n++
					f.Index(j).SetUint(n)
				}
			case reflect.String:
				f.SetString(fmt.Sprintf("fmt%d", base))
			}
		}
	}
	fill(v.FieldByName("Dissect"))
	fill(v.FieldByName("Sessions"))
	fill(v.FieldByName("Generate"))
	fill(v.FieldByName("Ingest"))
	fill(v.FieldByName("Engine"))
	fill(v.FieldByName("Trace"))
	return s
}

// TestSnapshotMergeCommutes asserts a⊕b == b⊕a for fully-populated
// snapshots — the property that makes reduce-time merging independent
// of worker completion order.
func TestSnapshotMergeCommutes(t *testing.T) {
	ab := fillSnapshot(100)
	ab.Merge(fillSnapshot(2000))
	ba := fillSnapshot(2000)
	ba.Merge(fillSnapshot(100))
	// Format and DecodePath differ (first non-empty wins) — align
	// before comparing.
	ba.Ingest.Format = ab.Ingest.Format
	ba.Ingest.DecodePath = ab.Ingest.DecodePath
	if !reflect.DeepEqual(ab, ba) {
		t.Errorf("merge not commutative:\n a⊕b %+v\n b⊕a %+v", ab, ba)
	}
}

// TestSnapshotMergeRaggedShards covers merging snapshots with different
// shard counts (replay at another worker count): the shorter slice
// grows, Workers takes the max.
func TestSnapshotMergeRaggedShards(t *testing.T) {
	a := &Snapshot{Workers: 2, ShardPackets: []uint64{5, 7}}
	b := &Snapshot{Workers: 4, ShardPackets: []uint64{1, 2, 3, 4}}
	a.Merge(b)
	if a.Workers != 4 {
		t.Errorf("Workers = %d, want 4", a.Workers)
	}
	if want := []uint64{6, 9, 3, 4}; !reflect.DeepEqual(a.ShardPackets, want) {
		t.Errorf("ShardPackets = %v, want %v", a.ShardPackets, want)
	}
}

func TestSkew(t *testing.T) {
	cases := []struct {
		counts []uint64
		want   float64
	}{
		{nil, 0},
		{[]uint64{0, 0}, 0},
		{[]uint64{10, 10}, 1},
		{[]uint64{3, 1}, 1.5},
	}
	for _, c := range cases {
		if got := skew(c.counts); got != c.want {
			t.Errorf("skew(%v) = %g, want %g", c.counts, got, c.want)
		}
	}
}

// TestStreamProjection asserts Stream picks exactly the stream-derived
// fields and none of the runtime ones.
func TestStreamProjection(t *testing.T) {
	s := fillSnapshot(10)
	st := s.Stream()
	if st.Datagrams != s.Dissect.Datagrams || st.QUICPackets != s.Dissect.Packets ||
		st.ParseFailures != s.Dissect.ParseFailures || st.Decrypted != s.Dissect.Decrypted ||
		st.ClientHellos != s.Dissect.ClientHellos {
		t.Error("dissect projection wrong")
	}
	if st.SessionsEmitted != s.Sessions.Emitted || st.SetSpills != s.Sessions.SetSpills {
		t.Error("sessions projection wrong")
	}
	if st.EventsPlanned != s.Generate.EventsPlanned || st.GeneratedPackets != s.Generate.Packets ||
		st.PayloadHits != s.Generate.PayloadHits || st.PayloadMisses != s.Generate.PayloadMisses {
		t.Error("generate projection wrong")
	}
	if st.IngestRecords != s.Ingest.Records || st.DecodeDrops != s.Ingest.DecodeDrops {
		t.Error("ingest projection wrong")
	}
	if st.TraceWritten != s.Trace.Written || st.TraceDropped != s.Trace.Dropped {
		t.Error("trace projection wrong")
	}
}

// TestTextOmitsIdleSections checks the human rendering only prints
// layers that saw traffic.
func TestTextOmitsIdleSections(t *testing.T) {
	s := &Snapshot{Workers: 2}
	s.Dissect.Datagrams = 10
	s.Dissect.Packets = 9
	out := s.Text()
	if !strings.Contains(out, "dissect:") {
		t.Errorf("dissect section missing:\n%s", out)
	}
	for _, absent := range []string{"sessions:", "generate:", "ingest:", "tap:", "trace:"} {
		if strings.Contains(out, absent) {
			t.Errorf("idle section %q rendered:\n%s", absent, out)
		}
	}
}

// TestWritePrometheusDeterministic pins the exposition contract: equal
// snapshots render byte-equal documents, every sample has a TYPE line,
// and histogram buckets are cumulative up to +Inf == count.
func TestWritePrometheusDeterministic(t *testing.T) {
	render := func() string {
		var b strings.Builder
		s := fillSnapshot(42)
		// fillSnapshot fabricates internally-inconsistent histograms;
		// rebuild them from real observations so the cumulative-bucket
		// invariant holds.
		s.Engine.TapBatchFill = Hist{}
		s.Ingest.BatchFill = Hist{}
		s.Engine.TapBatchFill.Observe(3)
		s.Engine.TapBatchFill.Observe(512)
		s.WritePrometheus(&b, "quicsand")
		return b.String()
	}
	doc := render()
	if doc != render() {
		t.Fatal("equal snapshots rendered different documents")
	}

	typed := map[string]bool{}
	var lastCum uint64
	for _, line := range strings.Split(strings.TrimSuffix(doc, "\n"), "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			typed[strings.Fields(line)[2]] = true
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Fatalf("malformed sample line %q", line)
		}
		name := fields[0]
		if i := strings.IndexByte(name, '{'); i >= 0 {
			name = name[:i]
		}
		base := name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if t := strings.TrimSuffix(name, suffix); t != name && typed[t] {
				base = t
			}
		}
		if !typed[base] {
			t.Errorf("sample %q has no preceding # TYPE", line)
		}
		// Cumulative-bucket check for the tap fill histogram.
		if strings.HasPrefix(line, "quicsand_engine_tap_batch_fill_bucket") {
			var v uint64
			fmt.Sscan(fields[1], &v)
			if v < lastCum {
				t.Errorf("bucket not cumulative at %q (prev %d)", line, lastCum)
			}
			lastCum = v
		}
	}
	if !strings.Contains(doc, `quicsand_engine_tap_batch_fill_bucket{le="+Inf"} 2`) {
		t.Errorf("+Inf bucket != count:\n%s", doc)
	}
}

// TestManifestWriteFile round-trips a manifest through disk and JSON.
func TestManifestWriteFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "m.json")
	m := &Manifest{
		Command:       "quicsand simulate",
		Config:        map[string]any{"seed": 7},
		Workers:       4,
		WallNS:        123456,
		PacketsPerSec: 1e6,
		Stages:        []StageTiming{{Name: "dissect", Items: 10, WallNS: 99}},
		ShardPackets:  []uint64{5, 5},
		ShardSkew:     1.0,
		Telemetry:     fillSnapshot(3),
	}
	if err := m.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if data[len(data)-1] != '\n' {
		t.Error("manifest missing trailing newline")
	}
	var got Manifest
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatalf("manifest is not valid JSON: %v", err)
	}
	if got.Command != m.Command || got.Workers != 4 || len(got.Stages) != 1 {
		t.Errorf("round trip mangled manifest: %+v", got)
	}
	if got.Telemetry == nil || got.Telemetry.Dissect.Datagrams != m.Telemetry.Dissect.Datagrams {
		t.Error("telemetry snapshot lost in round trip")
	}
}
