package telescope

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"
	"time"

	"quicsand/internal/faultinject"
	"quicsand/internal/netmodel"
	"quicsand/internal/salvage"
)

// salvageTrace writes n distinct UDP records and returns the encoded
// trace, the packets, and every record's start offset in the stream.
func salvageTrace(t testing.TB, n int) (data []byte, pkts []*Packet, offs []uint64) {
	t.Helper()
	var buf bytes.Buffer
	w := NewWriter(&buf)
	off := uint64(8) // file header
	for i := 0; i < n; i++ {
		payload := make([]byte, 5+i%7)
		for j := range payload {
			payload[j] = byte(i)
		}
		p := &Packet{
			TS:  TS(MeasurementStart.Add(time.Duration(i) * time.Second)),
			Src: netmodel.MustAddr("1.2.3.4") + netmodel.Addr(i), Dst: netmodel.MustAddr("44.0.0.1"),
			SrcPort: uint16(1000 + i), DstPort: 443,
			Proto: ProtoUDP, Size: uint16(len(payload)), Payload: payload,
		}
		offs = append(offs, off)
		if err := w.Write(p); err != nil {
			t.Fatal(err)
		}
		off += uint64(recHdrLen+2) + uint64(len(payload))
		pkts = append(pkts, p)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), pkts, offs
}

// drainSalvage reads data to termination under pol, returning the
// recovered packets, the terminal error and the salvage ledger.
func drainSalvage(data []byte, pol salvage.Policy) ([]*Packet, error, salvage.Stats) {
	r := NewReader(bytes.NewReader(data))
	r.SetSalvage(pol)
	var out []*Packet
	for {
		p, err := r.Read()
		if err != nil {
			return out, err, r.Salvage()
		}
		out = append(out, p)
	}
}

// samePacket compares every stored field.
func samePacket(a, b *Packet) bool {
	return a.TS == b.TS && a.Src == b.Src && a.Dst == b.Dst &&
		a.SrcPort == b.SrcPort && a.DstPort == b.DstPort &&
		a.Proto == b.Proto && a.Flags == b.Flags && a.Size == b.Size &&
		a.Weight == b.Weight && bytes.Equal(a.Payload, b.Payload)
}

// TestSalvageMidRecordFlip damages one record's proto byte mid-file:
// fail-fast keeps the historical terminal error, salvage mode recovers
// every record outside the damaged one bit-identically and accounts
// the span.
func TestSalvageMidRecordFlip(t *testing.T) {
	data, pkts, offs := salvageTrace(t, 20)
	k := 11
	bad := faultinject.Apply(data, faultinject.Fault{
		Kind: faultinject.BitFlip, Offset: offs[k] + 20, XorMask: 0xFF,
	})

	got, err, _ := drainSalvage(bad, salvage.Policy{})
	if !errors.Is(err, ErrBadTrace) {
		t.Fatalf("fail-fast err = %v, want ErrBadTrace", err)
	}
	if len(got) != k {
		t.Fatalf("fail-fast read %d records before aborting, want %d", len(got), k)
	}

	got, err, sv := drainSalvage(bad, salvage.Policy{SkipCorrupt: true})
	if !errors.Is(err, io.EOF) {
		t.Fatalf("salvage terminal err = %v, want io.EOF", err)
	}
	want := append(append([]*Packet(nil), pkts[:k]...), pkts[k+1:]...)
	if len(got) != len(want) {
		t.Fatalf("salvaged %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if !samePacket(got[i], want[i]) {
			t.Errorf("record %d differs:\n%+v\n%+v", i, got[i], want[i])
		}
	}
	if sv.CorruptRecords != 1 || sv.ResyncScans != 1 {
		t.Errorf("ledger = %+v, want 1 corrupt record over 1 resync", sv)
	}
	if sv.MaxLostRecords == 0 || sv.SalvagedBytes == 0 {
		t.Errorf("ledger carries no loss bound: %+v", sv)
	}
}

// TestSalvageGarbageSplice inserts foreign bytes between two records:
// resync scans past the splice and recovers every original record, so
// only the ledger (not the data) records the damage.
func TestSalvageGarbageSplice(t *testing.T) {
	data, pkts, offs := salvageTrace(t, 16)
	const spliceLen = 37
	bad := faultinject.Apply(data, faultinject.Fault{
		Kind: faultinject.Garbage, Offset: offs[9], Len: spliceLen, Seed: 7,
	})

	got, err, sv := drainSalvage(bad, salvage.Policy{SkipCorrupt: true})
	if !errors.Is(err, io.EOF) {
		t.Fatalf("terminal err = %v, want io.EOF", err)
	}
	if len(got) != len(pkts) {
		t.Fatalf("salvaged %d records, want all %d (splice destroyed none)", len(got), len(pkts))
	}
	for i := range pkts {
		if !samePacket(got[i], pkts[i]) {
			t.Errorf("record %d differs after splice:\n%+v\n%+v", i, got[i], pkts[i])
		}
	}
	if sv.CorruptRecords != 1 || sv.SalvagedBytes != spliceLen {
		t.Errorf("ledger = %+v, want 1 corrupt record and %d salvaged bytes", sv, spliceLen)
	}
}

// TestSalvageTornTail truncates the stream mid-record: salvage yields
// every complete record then a clean EOF, where fail-fast reports the
// truncation as corruption.
func TestSalvageTornTail(t *testing.T) {
	data, pkts, offs := salvageTrace(t, 12)
	torn := data[:offs[len(offs)-1]+13] // half of the last record

	if _, err, _ := drainSalvage(torn, salvage.Policy{}); !errors.Is(err, ErrBadTrace) {
		t.Fatalf("fail-fast err = %v, want ErrBadTrace", err)
	}

	got, err, sv := drainSalvage(torn, salvage.Policy{SkipCorrupt: true})
	if !errors.Is(err, io.EOF) {
		t.Fatalf("terminal err = %v, want io.EOF", err)
	}
	if len(got) != len(pkts)-1 {
		t.Fatalf("salvaged %d records, want %d complete ones", len(got), len(pkts)-1)
	}
	for i := range got {
		if !samePacket(got[i], pkts[i]) {
			t.Errorf("record %d differs:\n%+v\n%+v", i, got[i], pkts[i])
		}
	}
	if sv.CorruptRecords != 1 || sv.MaxLostRecords != 1 {
		t.Errorf("ledger = %+v, want exactly one lost record", sv)
	}
}

// TestSalvageHeaderCorruptionStaysTerminal pins the gate: damage to
// the file header (magic or version) is never salvageable.
func TestSalvageHeaderCorruptionStaysTerminal(t *testing.T) {
	data, _, _ := salvageTrace(t, 4)
	for name, off := range map[string]uint64{"magic": 1, "version": 4} {
		bad := faultinject.Apply(data, faultinject.Fault{
			Kind: faultinject.BitFlip, Offset: off, XorMask: 0x40,
		})
		if _, err, _ := drainSalvage(bad, salvage.Policy{SkipCorrupt: true}); !errors.Is(err, ErrBadTrace) {
			t.Errorf("%s corruption under salvage: err = %v, want terminal ErrBadTrace", name, err)
		}
	}
}

// TestSalvageTransientRetries exercises the byte-level retry path: a
// reader surfacing injected Temporary() errors succeeds under a retry
// budget and counts each retry, and still fails without one.
func TestSalvageTransientRetries(t *testing.T) {
	data, pkts, offs := salvageTrace(t, 6)
	faults := []faultinject.Fault{
		{Kind: faultinject.Transient, Offset: offs[2], Count: 2},
		{Kind: faultinject.Transient, Offset: offs[4]},
	}

	r := NewReader(faultinject.NewReader(bytes.NewReader(data), faults...))
	var firstErr error
	for firstErr == nil {
		_, firstErr = r.Read()
	}
	var te *faultinject.TransientError
	if !errors.As(firstErr, &te) {
		t.Fatalf("without retries err = %v, want injected TransientError", firstErr)
	}

	r = NewReader(faultinject.NewReader(bytes.NewReader(data), faults...))
	r.SetSalvage(salvage.Policy{MaxRetries: 3, Sleep: func(time.Duration) {}})
	var got []*Packet
	for {
		p, err := r.Read()
		if err != nil {
			if !errors.Is(err, io.EOF) {
				t.Fatalf("with retries err = %v, want clean EOF", err)
			}
			break
		}
		got = append(got, p)
	}
	if len(got) != len(pkts) {
		t.Fatalf("recovered %d records, want %d", len(got), len(pkts))
	}
	if sv := r.Salvage(); sv.TransientRetries != 3 {
		t.Errorf("TransientRetries = %d, want 3", sv.TransientRetries)
	}
}

// TestSalvageErrorOffsetsUniform asserts the satellite contract: every
// corruption error names both the record index and the byte offset.
func TestSalvageErrorOffsetsUniform(t *testing.T) {
	data, _, offs := salvageTrace(t, 5)
	k := 3
	cases := map[string][]byte{
		"bad-proto": faultinject.Apply(data, faultinject.Fault{
			Kind: faultinject.BitFlip, Offset: offs[k] + 20, XorMask: 0xFF,
		}),
		"oversize-payload": func() []byte {
			bad := append([]byte(nil), data...)
			binary.LittleEndian.PutUint16(bad[offs[k]+28:], 9999)
			return bad
		}(),
		"torn-tail": data[:offs[k]+9],
	}
	for name, bad := range cases {
		_, err, _ := drainSalvage(bad, salvage.Policy{})
		if !errors.Is(err, ErrBadTrace) {
			t.Errorf("%s: err = %v, want ErrBadTrace", name, err)
			continue
		}
		msg := err.Error()
		if !contains(msg, "at record 3") || !contains(msg, "byte offset") {
			t.Errorf("%s: error lacks record index or byte offset: %v", name, err)
		}
	}
}

func contains(s, sub string) bool { return bytes.Contains([]byte(s), []byte(sub)) }
