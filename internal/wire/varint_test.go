package wire

import (
	"bytes"
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestVarintRFCExamples(t *testing.T) {
	// Examples from RFC 9000 §A.1.
	cases := []struct {
		val uint64
		enc []byte
	}{
		{151288809941952652, []byte{0xc2, 0x19, 0x7c, 0x5e, 0xff, 0x14, 0xe8, 0x8c}},
		{494878333, []byte{0x9d, 0x7f, 0x3e, 0x7d}},
		{15293, []byte{0x7b, 0xbd}},
		{37, []byte{0x25}},
	}
	for _, c := range cases {
		got := AppendVarint(nil, c.val)
		if !bytes.Equal(got, c.enc) {
			t.Errorf("AppendVarint(%d) = %x, want %x", c.val, got, c.enc)
		}
		v, n, err := ConsumeVarint(c.enc)
		if err != nil || v != c.val || n != len(c.enc) {
			t.Errorf("ConsumeVarint(%x) = %d,%d,%v want %d,%d", c.enc, v, n, err, c.val, len(c.enc))
		}
	}
}

func TestVarintTwoByteAlternateEncoding(t *testing.T) {
	// RFC 9000 A.1: 37 can also be encoded as 0x4025.
	v, n, err := ConsumeVarint([]byte{0x40, 0x25})
	if err != nil || v != 37 || n != 2 {
		t.Fatalf("got %d,%d,%v want 37,2,nil", v, n, err)
	}
}

func TestVarintBoundaries(t *testing.T) {
	for _, v := range []uint64{0, 63, 64, 16383, 16384, 1<<30 - 1, 1 << 30, MaxVarint} {
		enc := AppendVarint(nil, v)
		if len(enc) != VarintLen(v) {
			t.Errorf("len(enc(%d)) = %d, VarintLen = %d", v, len(enc), VarintLen(v))
		}
		got, n, err := ConsumeVarint(enc)
		if err != nil || got != v || n != len(enc) {
			t.Errorf("round trip %d failed: %d,%d,%v", v, got, n, err)
		}
	}
}

func TestVarintOutOfRange(t *testing.T) {
	if VarintLen(MaxVarint+1) != 0 {
		t.Error("VarintLen should reject 2^62")
	}
	defer func() {
		if recover() == nil {
			t.Error("AppendVarint should panic out of range")
		}
	}()
	AppendVarint(nil, math.MaxUint64)
}

func TestVarintTruncated(t *testing.T) {
	for _, enc := range [][]byte{{}, {0x40}, {0x80, 1, 2}, {0xc0, 1, 2, 3, 4, 5, 6}} {
		if _, _, err := ConsumeVarint(enc); !errors.Is(err, ErrTruncated) {
			t.Errorf("ConsumeVarint(%x) err = %v, want ErrTruncated", enc, err)
		}
	}
}

func TestVarintRoundTripProperty(t *testing.T) {
	f := func(v uint64) bool {
		v &= MaxVarint
		got, n, err := ConsumeVarint(AppendVarint(nil, v))
		return err == nil && got == v && n == VarintLen(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestVarintConsumeIgnoresTrailing(t *testing.T) {
	b := AppendVarint(nil, 12345)
	b = append(b, 0xde, 0xad)
	v, n, err := ConsumeVarint(b)
	if err != nil || v != 12345 || n != len(b)-2 {
		t.Fatalf("got %d,%d,%v", v, n, err)
	}
}

func TestAppendVarintWithLen(t *testing.T) {
	b, err := AppendVarintWithLen(nil, 5, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b, []byte{0x40, 0x05}) {
		t.Fatalf("got %x", b)
	}
	v, n, err := ConsumeVarint(b)
	if err != nil || v != 5 || n != 2 {
		t.Fatalf("decode: %d,%d,%v", v, n, err)
	}
	if _, err := AppendVarintWithLen(nil, 1<<20, 2); err == nil {
		t.Error("expected range error for 2-byte encoding of 2^20")
	}
	if _, err := AppendVarintWithLen(nil, 1, 3); err == nil {
		t.Error("expected error for invalid length 3")
	}
	b8, err := AppendVarintWithLen(nil, 7, 8)
	if err != nil {
		t.Fatal(err)
	}
	v, n, _ = ConsumeVarint(b8)
	if v != 7 || n != 8 {
		t.Fatalf("8-byte forced encoding decode: %d,%d", v, n)
	}
}

func TestPacketNumberDecodeRFCExample(t *testing.T) {
	// RFC 9000 A.3: largest 0xa82f30ea, truncated 0x9b32, len 2
	// → 0xa82f9b32.
	got := DecodePacketNumber(0xa82f30ea, 0x9b32, 2)
	if got != 0xa82f9b32 {
		t.Fatalf("DecodePacketNumber = %#x, want 0xa82f9b32", got)
	}
}

func TestPacketNumberRoundTripProperty(t *testing.T) {
	f := func(pn uint64, acked uint64) bool {
		pn &= 1<<61 - 1
		if pn == 0 {
			pn = 1
		}
		// Receiver has seen something close behind pn.
		acked = pn - 1 - acked%64
		if acked > pn {
			acked = pn - 1
		}
		pnLen := PacketNumberLen(pn, acked)
		enc := AppendPacketNumber(nil, pn, pnLen)
		var truncated uint64
		for _, b := range enc {
			truncated = truncated<<8 | uint64(b)
		}
		return DecodePacketNumber(acked, truncated, pnLen) == pn
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}
