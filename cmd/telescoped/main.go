// Command telescoped is a live miniature telescope: it binds a UDP
// socket and classifies every arriving datagram with the full QUIC
// dissector, printing one line per packet — the same pipeline the
// simulation feeds, attached to a real socket.
//
// Datagrams are fanned out over the sharded pipeline engine by remote
// address (-workers, 0 = all CPUs), so each source's packets are
// dissected in order by a per-shard dissector while the socket reader
// never blocks on crypto.
//
// Observability: -metrics ADDR serves Prometheus text exposition on
// /metrics (live per-shard counters plus heartbeat gauges, and the
// final merged snapshot once shutdown begins) together with the
// standard net/http/pprof handlers; -heartbeat controls the structured
// progress log (packets/s, shard skew, heap); -trace-out FILE arms the
// flight recorder (DESIGN.md §15) and writes the stage/shard timeline
// as Perfetto-loadable Chrome trace JSON at shutdown (referenced from
// the manifest); -manifest FILE writes a
// machine-readable run record at shutdown; -record FILE checkpoints
// every received datagram to a QSND or pcap capture that `quicsand
// replay` can re-analyze. SIGINT/SIGTERM stop the capture gracefully:
// the pipeline drains, the record sink is flushed with its written and
// dropped counts logged (and folded into the manifest), the final
// telemetry snapshot is flushed, and the process exits cleanly.
//
// Daemon mode (-window DUR) swaps the per-packet log for the full
// streaming analysis pipeline (DESIGN.md §17): every datagram is mapped
// into the telescope address model and fed to the incremental analyzer
// with one sliding-window detector bank per shard. -alerts FILE|-
// appends closed detector episodes as JSON lines, -checkpoint FILE
// atomically rewrites the serialized pipeline state every
// -checkpoint-every (resumable with matching -seed/-scale),
// -mem-budget bounds per-shard session state by evicting the coldest
// source, and -detect-config loads detector thresholds from JSON. Each
// checkpoint also appends an analysis snapshot to the -manifest record.
// Shutdown drains the stream and emits the final checkpoint.
//
// Point any QUIC client at it (or run cmd/quicsand's generated trace
// through it) to watch the classification logic work on live traffic.
package main

import (
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"quicsand/internal/capture"
	"quicsand/internal/dissect"
	"quicsand/internal/engine"
	"quicsand/internal/netmodel"
	"quicsand/internal/telemetry"
	"quicsand/internal/telescope"
	"quicsand/internal/wire"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:8443", "UDP address to observe")
	workers := flag.Int("workers", 0, "dissection shards; 0 = all CPUs")
	metrics := flag.String("metrics", "", "serve Prometheus /metrics and /debug/pprof on this address")
	heartbeat := flag.Duration("heartbeat", 10*time.Second, "progress-log interval (0 disables)")
	manifest := flag.String("manifest", "", "write a machine-readable run manifest at shutdown")
	record := flag.String("record", "", "record received datagrams to this capture file (.pcap/.cap = libpcap, else QSND)")
	traceOut := flag.String("trace-out", "", "write the run's flight-recorder timeline as Chrome trace-event JSON at shutdown")
	window := flag.Duration("window", 0, "daemon mode: run the full analysis pipeline with sliding-window detectors of this width (0 = classic per-packet log)")
	ckptEvery := flag.Duration("checkpoint-every", time.Minute, "daemon checkpoint interval (0 = final drain only)")
	memBudget := flag.Int("mem-budget", 0, "daemon per-sessionizer active-session budget, coldest evicted past it (0 = unbounded)")
	alerts := flag.String("alerts", "", "daemon: append detector alerts as JSON lines to FILE, or - for stdout")
	checkpoint := flag.String("checkpoint", "", "daemon: atomically (re)write the latest checkpoint image to FILE")
	detectConfig := flag.String("detect-config", "", "daemon: detector-threshold JSON (default thresholds when empty)")
	seed := flag.Uint64("seed", 2021, "daemon: simulation-substrate seed stamped into checkpoints")
	scale := flag.Float64("scale", 0.001, "daemon: simulation-substrate scale stamped into checkpoints")
	flag.Parse()

	opts := serveOpts{
		workers:      *workers,
		metrics:      *metrics,
		heartbeat:    *heartbeat,
		manifest:     *manifest,
		record:       *record,
		traceOut:     *traceOut,
		window:       *window,
		ckptEvery:    *ckptEvery,
		memBudget:    *memBudget,
		alerts:       *alerts,
		checkpoint:   *checkpoint,
		detectConfig: *detectConfig,
		seed:         *seed,
		scale:        *scale,
	}
	if err := run(*listen, opts, os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "telescoped:", err)
		os.Exit(1)
	}
}

// run binds the socket, installs graceful SIGINT/SIGTERM shutdown, and
// serves until the socket closes. The signal goroutine is reaped before
// run returns (no leak), so tests can call it repeatedly.
func run(listen string, opts serveOpts, out, diag io.Writer) error {
	if opts.window <= 0 {
		if err := opts.validateClassic(); err != nil {
			return err
		}
	}
	pc, err := net.ListenPacket("udp", listen)
	if err != nil {
		return err
	}
	defer pc.Close()
	fmt.Fprintf(diag, "telescoped: observing %s (SIGINT/SIGTERM to stop)\n", pc.LocalAddr())

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		select {
		case sig := <-stop:
			fmt.Fprintf(diag, "telescoped: %v: draining pipeline, flushing final snapshot\n", sig)
			pc.Close()
		case <-done:
		}
	}()

	if opts.window > 0 {
		err = serveDaemon(opts, pc, out, diag)
	} else {
		err = serve(opts, pc, out, diag)
	}
	signal.Stop(stop)
	close(done)
	wg.Wait()
	return err
}

// serveOpts parameterizes one serve run.
type serveOpts struct {
	workers   int
	metrics   string // Prometheus+pprof listen address; "" disables
	heartbeat time.Duration
	manifest  string // run-manifest path; "" disables
	record    string // capture-file path; "" disables
	traceOut  string // flight-recorder trace path; "" disables

	// Daemon mode (-window > 0): the streaming analysis pipeline
	// replaces the per-packet classification log.
	window       time.Duration
	ckptEvery    time.Duration // periodic checkpoints; 0 = final only
	memBudget    int           // sessionizer MaxActive; 0 = unbounded
	alerts       string        // alert JSON-lines path; "-" = out
	checkpoint   string        // checkpoint-image path; "" disables
	detectConfig string        // detector-threshold JSON path
	seed         uint64        // substrate parameters stamped into
	scale        float64       // checkpoints (resume must match them)
}

// validateClassic rejects daemon-only flags when -window is off, so a
// typo'd invocation fails loudly instead of silently logging packets.
func (o serveOpts) validateClassic() error {
	switch {
	case o.alerts != "":
		return fmt.Errorf("-alerts requires -window")
	case o.checkpoint != "":
		return fmt.Errorf("-checkpoint requires -window")
	case o.detectConfig != "":
		return fmt.Errorf("-detect-config requires -window")
	case o.memBudget != 0:
		return fmt.Errorf("-mem-budget requires -window")
	}
	return nil
}

// datagram is one received UDP payload with its remote address.
type datagram struct {
	addr string
	data []byte
}

// serve drains pc through the sharded engine until the socket closes,
// then flushes the final telemetry snapshot: the stage table and
// counter block onto out, the merged snapshot onto the /metrics
// endpoint, and the optional manifest to disk. Each shard owns one
// dissector and one live counter bank; lines are serialized onto out
// with a mutex (completion order — a live view, not a canonical
// trace).
func serve(opts serveOpts, pc net.PacketConn, out, diag io.Writer) error {
	n := engine.Config{Workers: opts.workers}.ResolveWorkers()
	live := telemetry.NewLive(n)
	var flight *telemetry.Recorder
	if opts.traceOut != "" {
		flight = telemetry.NewRecorder(telemetry.RecorderConfig{})
	}

	var srv *telemetry.Server
	if opts.metrics != "" {
		s, err := telemetry.NewServer(opts.metrics, live)
		if err != nil {
			return fmt.Errorf("metrics endpoint: %w", err)
		}
		defer s.Close()
		srv = s
		fmt.Fprintf(diag, "telescoped: metrics on http://%s/metrics (pprof on /debug/pprof)\n", s.Addr())
	}
	var hb *telemetry.Heartbeat
	if opts.heartbeat > 0 {
		hb = telemetry.StartHeartbeat(live, srv, opts.heartbeat, func(format string, args ...any) {
			fmt.Fprintf(diag, "telescoped: "+format+"\n", args...)
		})
		defer hb.Stop()
	}

	// Optional capture: the socket reader goroutine feeds the sink
	// before dispatch, so the recording preserves arrival order and
	// needs no locking. Capture is fire-and-forget — write failures
	// (full disk) are sticky in the sink and surface as the drained
	// Dropped() count at shutdown, never by stalling the read loop.
	var rec capture.Sink
	var recFile *os.File
	var recSkipped uint64
	if opts.record != "" {
		f, err := os.Create(opts.record)
		if err != nil {
			return fmt.Errorf("record: %w", err)
		}
		recFile = f
		rec = capture.NewSink(f, capture.FormatForPath(opts.record))
	}
	dstAddr, dstPort := localIPv4(pc.LocalAddr())

	chans := make([]chan datagram, n)
	for i := range chans {
		chans[i] = make(chan datagram, 64)
	}

	// Socket reader: hash the remote address onto a shard so one
	// source's datagrams stay ordered on one dissector. Inline FNV-1a
	// keeps the read loop free of per-packet hasher allocations.
	go func() {
		buf := make([]byte, 65535)
		for {
			sz, addr, err := pc.ReadFrom(buf)
			if err != nil {
				for _, ch := range chans {
					close(ch)
				}
				return
			}
			d := datagram{addr: addr.String(), data: append([]byte(nil), buf[:sz]...)}
			if rec != nil {
				if p := recordPacket(addr, dstAddr, dstPort, d.data); p != nil {
					rec.Capture(p)
				} else {
					recSkipped++
				}
			}
			h := uint32(2166136261)
			for i := 0; i < len(d.addr); i++ {
				h = (h ^ uint32(d.addr[i])) * 16777619
			}
			chans[h%uint32(n)] <- d
		}
	}()

	feeds := make([]engine.Feed[datagram], n)
	for i := range feeds {
		ch := chans[i]
		feeds[i] = func(emit func(datagram)) {
			for d := range ch {
				emit(d)
			}
		}
	}

	dissectors := make([]*dissect.Dissector, n)
	for i := range dissectors {
		dissectors[i] = dissect.NewDissector()
	}
	var mu sync.Mutex
	st := engine.Run(engine.Config{
		Workers: opts.workers,
		// Feed-side worker time is waiting on the socket fan-out.
		Recorder: flight, FeedStage: telemetry.StageIngest,
	}, feeds, func(shard int, d datagram) bool {
		bank := live.Shard(shard)
		bank.Packets.Add(1)
		bank.Bytes.Add(uint64(len(d.data)))
		text, quic := describe(dissectors[shard], d)
		if !quic {
			bank.NonQUIC.Add(1)
		}
		mu.Lock()
		fmt.Fprint(out, text)
		mu.Unlock()
		return false
	}, nil)

	// Progress ends when the pipeline drains; stopping the heartbeat
	// here (Stop waits for its goroutine) leaves the shutdown writes
	// below as the only diag writer.
	if hb != nil {
		hb.Stop()
	}

	// Final snapshot: merge the per-shard dissector banks, publish to
	// the endpoint (scrapable until the process exits), and flush the
	// human-readable form.
	snap := &telemetry.Snapshot{Workers: n}
	for _, d := range dissectors {
		snap.Dissect.Merge(&d.Metrics)
	}
	snap.ShardPackets = live.ShardCounts()
	snap.Engine = st.Engine
	if rec != nil {
		// Drain the capture: flush, close, and fold the sink's ledger
		// into the snapshot so -manifest and /metrics expose how much
		// of the observed traffic the file actually holds.
		if err := rec.Flush(); err != nil {
			fmt.Fprintf(diag, "telescoped: record %s: %v\n", opts.record, err)
		}
		if err := recFile.Close(); err != nil {
			return fmt.Errorf("record %s: %w", opts.record, err)
		}
		snap.Trace.Written = rec.Count()
		snap.Trace.Dropped = rec.Dropped() + recSkipped
		fmt.Fprintf(diag, "telescoped: record drained: %d records written to %s, %d dropped\n",
			rec.Count(), opts.record, snap.Trace.Dropped)
	}
	if srv != nil {
		srv.SetFinal(snap)
	}
	fmt.Fprint(out, st)
	fmt.Fprint(out, snap.Text())

	if flight != nil {
		tl := flight.Timeline(st.Wall)
		f, err := os.Create(opts.traceOut)
		if err != nil {
			return fmt.Errorf("trace-out: %w", err)
		}
		if err := tl.WriteChromeTrace(f); err != nil {
			f.Close()
			return fmt.Errorf("trace-out %s: %w", opts.traceOut, err)
		}
		if err := f.Close(); err != nil {
			return fmt.Errorf("trace-out %s: %w", opts.traceOut, err)
		}
		fmt.Fprint(out, tl.StageTable(10))
		fmt.Fprintf(diag, "telescoped: trace written to %s (%d spans)\n", opts.traceOut, tl.SpanCount())
	}

	if opts.manifest != "" {
		m := &telemetry.Manifest{
			Command: "telescoped",
			Config: map[string]any{
				"listen":  pc.LocalAddr().String(),
				"workers": n,
				"record":  opts.record,
			},
			Workers:       st.Workers,
			WallNS:        st.Wall.Nanoseconds(),
			PacketsPerSec: st.Throughput(),
			ShardPackets:  snap.ShardPackets,
			ShardSkew:     snap.Skew(),
			TraceFile:     opts.traceOut,
			Telemetry:     snap,
		}
		for _, s := range st.Stages {
			m.Stages = append(m.Stages, telemetry.StageTiming{
				Name: s.Name, Items: s.Items, WallNS: s.Wall.Nanoseconds(),
			})
		}
		if err := m.WriteFile(opts.manifest); err != nil {
			return fmt.Errorf("manifest: %w", err)
		}
		fmt.Fprintf(diag, "telescoped: manifest written to %s\n", opts.manifest)
	}
	return nil
}

// localIPv4 resolves the bound socket address into the telescope
// packet model's destination fields (zero when not IPv4).
func localIPv4(a net.Addr) (netmodel.Addr, uint16) {
	ua, ok := a.(*net.UDPAddr)
	if !ok {
		return 0, 0
	}
	ip4 := ua.IP.To4()
	if ip4 == nil {
		return 0, uint16(ua.Port)
	}
	return netmodel.Addr(uint32(ip4[0])<<24 | uint32(ip4[1])<<16 | uint32(ip4[2])<<8 | uint32(ip4[3])),
		uint16(ua.Port)
}

// recordPacket shapes one received datagram into the telescope store's
// packet model. Non-IPv4 remotes have no representation in the 32-bit
// address space and return nil (counted as record drops).
func recordPacket(remote net.Addr, dst netmodel.Addr, dstPort uint16, data []byte) *telescope.Packet {
	ua, ok := remote.(*net.UDPAddr)
	if !ok {
		return nil
	}
	ip4 := ua.IP.To4()
	if ip4 == nil {
		return nil
	}
	return &telescope.Packet{
		TS:      telescope.TS(time.Now()),
		Src:     netmodel.Addr(uint32(ip4[0])<<24 | uint32(ip4[1])<<16 | uint32(ip4[2])<<8 | uint32(ip4[3])),
		Dst:     dst,
		SrcPort: uint16(ua.Port),
		DstPort: dstPort,
		Proto:   telescope.ProtoUDP,
		Size:    uint16(len(data)),
		Payload: data,
	}
}

// describe classifies one datagram into printable lines; quic reports
// whether deep validation accepted it.
func describe(d *dissect.Dissector, dg datagram) (text string, quic bool) {
	r, err := d.Dissect(dg.data)
	if err != nil {
		return fmt.Sprintf("%-21s %5dB  not QUIC\n", dg.addr, len(dg.data)), false
	}
	var b strings.Builder
	for _, pi := range r.Packets {
		fmt.Fprintf(&b, "%-21s %5dB  %-18s", dg.addr, len(dg.data), pi.Type)
		if pi.Type != wire.PacketTypeOneRTT {
			fmt.Fprintf(&b, " %-14s scid=%s dcid=%s", pi.Version, pi.SCID, pi.DCID)
		}
		if pi.HasClientHello {
			fmt.Fprintf(&b, " ClientHello sni=%q", pi.SNI)
		} else if pi.Type == wire.PacketTypeInitial && !pi.Decrypted {
			b.WriteString(" (undecryptable: backscatter-shaped)")
		}
		b.WriteByte('\n')
	}
	return b.String(), true
}
