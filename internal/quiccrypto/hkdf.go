// Package quiccrypto implements QUIC packet protection as specified by
// RFC 9001, plus the TLS 1.3 key schedule (RFC 8446 §7.1) needed to
// protect Handshake packets.
//
// Everything is built from the standard library (crypto/hmac,
// crypto/aes, crypto/cipher, crypto/sha256) and validated against the
// RFC 9001 Appendix A key-derivation vectors.
package quiccrypto

import (
	"crypto/hmac"
	"crypto/sha256"
)

// hkdfExtract implements HKDF-Extract (RFC 5869) with SHA-256.
func hkdfExtract(salt, ikm []byte) []byte {
	mac := hmac.New(sha256.New, salt)
	mac.Write(ikm)
	return mac.Sum(nil)
}

// hkdfExpand implements HKDF-Expand (RFC 5869) with SHA-256.
func hkdfExpand(prk, info []byte, length int) []byte {
	var (
		out  = make([]byte, 0, length)
		prev []byte
		ctr  byte
	)
	for len(out) < length {
		ctr++
		mac := hmac.New(sha256.New, prk)
		mac.Write(prev)
		mac.Write(info)
		mac.Write([]byte{ctr})
		prev = mac.Sum(nil)
		out = append(out, prev...)
	}
	return out[:length]
}

// hkdfExpandLabel implements HKDF-Expand-Label (RFC 8446 §7.1) with the
// "tls13 " label prefix used by both TLS 1.3 and QUIC.
func hkdfExpandLabel(secret []byte, label string, context []byte, length int) []byte {
	info := make([]byte, 0, 2+1+6+len(label)+1+len(context))
	info = append(info, byte(length>>8), byte(length))
	info = append(info, byte(6+len(label)))
	info = append(info, "tls13 "...)
	info = append(info, label...)
	info = append(info, byte(len(context)))
	info = append(info, context...)
	return hkdfExpand(secret, info, length)
}

// HKDFExtract exposes HKDF-Extract for the TLS key schedule.
func HKDFExtract(salt, ikm []byte) []byte { return hkdfExtract(salt, ikm) }

// HKDFExpandLabel exposes HKDF-Expand-Label for callers deriving
// non-packet secrets (e.g. the TLS finished keys).
func HKDFExpandLabel(secret []byte, label string, context []byte, length int) []byte {
	return hkdfExpandLabel(secret, label, context, length)
}
