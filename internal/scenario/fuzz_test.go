package scenario

import (
	"testing"
)

// FuzzLoad hardens the spec loader the way FuzzQSNDReader hardens the
// trace reader: arbitrary bytes must either yield a validated scenario
// or a clean error — never a panic, and never a scenario that fails
// its own Validate (the invariant Compile relies on).
func FuzzLoad(f *testing.F) {
	for _, name := range Builtins() {
		spec, err := BuiltinSpec(name)
		if err != nil {
			f.Fatal(err)
		}
		f.Add([]byte(spec))
	}
	f.Add([]byte(`{"name": "j", "phases": [{"kind": "misconfig", "sources": 3}]}`))
	f.Add([]byte("name = \"t\"\n[[phases]]\nkind = \"flood\"\nvector = \"quic\"\nattacks = 2\npair = {concurrent_share = 0.5, sequential_share = 0.2}\n[phases.victims]\norg = \"any\"\nsize = 2\n[phases.rate]\nbase_pps = 0.5\nshape = \"ramp\""))
	f.Add([]byte("name = \"nan\"\n[[phases]]\nkind = \"scan\"\nsources = 1\nvisits_mean = nan"))
	f.Add([]byte("arr = [[1, 2], [3]]\nname = \"x\""))
	f.Add([]byte("= \"x\""))
	f.Add([]byte("\xff\xfe{broken"))

	f.Fuzz(func(t *testing.T, data []byte) {
		sc, err := Load(data)
		if err != nil {
			return
		}
		// A loaded scenario must be self-consistently valid.
		if verr := sc.Validate(); verr != nil {
			t.Fatalf("Load accepted a scenario its own Validate rejects: %v\ninput: %q", verr, data)
		}
	})
}
