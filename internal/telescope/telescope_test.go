package telescope

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"testing/quick"
	"time"

	"quicsand/internal/netmodel"
)

func mkPacket(ts time.Time, src, dst string, sport, dport uint16) *Packet {
	return &Packet{
		TS:      TS(ts),
		Src:     netmodel.MustAddr(src),
		Dst:     netmodel.MustAddr(dst),
		SrcPort: sport,
		DstPort: dport,
		Proto:   ProtoUDP,
		Size:    1200,
	}
}

func TestClassification(t *testing.T) {
	ts := MeasurementStart.Add(time.Hour)
	req := mkPacket(ts, "1.2.3.4", "44.0.0.1", 5555, 443)
	resp := mkPacket(ts, "142.250.1.1", "44.0.0.2", 443, 6666)
	both := mkPacket(ts, "1.2.3.4", "44.0.0.1", 443, 443)
	neither := mkPacket(ts, "1.2.3.4", "44.0.0.1", 53, 53)

	if !req.IsRequest() || req.IsResponse() {
		t.Error("request misclassified")
	}
	if !resp.IsResponse() || resp.IsRequest() {
		t.Error("response misclassified")
	}
	// Source AND destination 443: the paper's disjointness observation
	// treats these as neither set.
	if both.IsRequest() || both.IsResponse() || both.IsQUICCandidate() {
		t.Error("443→443 should be in neither set")
	}
	if neither.IsQUICCandidate() {
		t.Error("non-443 classified as QUIC")
	}
	tcp := mkPacket(ts, "1.2.3.4", "44.0.0.1", 9999, 443)
	tcp.Proto = ProtoTCP
	if tcp.IsQUICCandidate() {
		t.Error("TCP/443 classified as QUIC")
	}
}

func TestTimestampHelpers(t *testing.T) {
	ts := TS(MeasurementStart.Add(90 * time.Minute))
	if ts.Hour() != 1 {
		t.Errorf("Hour = %d", ts.Hour())
	}
	if !ts.Time().Equal(MeasurementStart.Add(90 * time.Minute)) {
		t.Errorf("round trip = %v", ts.Time())
	}
	if TS(MeasurementStart).Seconds() >= TS(MeasurementStart.Add(time.Second)).Seconds() {
		t.Error("Seconds not monotone")
	}
	if HoursInMeasurement != 720 {
		t.Errorf("HoursInMeasurement = %d", HoursInMeasurement)
	}
}

func TestTelescopeFiltersAndCounts(t *testing.T) {
	var got []*Packet
	tel := New(SinkFunc(func(p *Packet) { got = append(got, p) }))

	inside := mkPacket(MeasurementStart, "1.1.1.1", "44.5.5.5", 1000, 443)
	outside := mkPacket(MeasurementStart, "1.1.1.1", "45.5.5.5", 1000, 443)
	tcp := mkPacket(MeasurementStart.Add(time.Minute), "2.2.2.2", "44.9.9.9", 80, 12345)
	tcp.Proto = ProtoTCP

	tel.Capture(inside)
	tel.Capture(outside)
	tel.Capture(tcp)

	if len(got) != 2 {
		t.Fatalf("sunk %d packets, want 2", len(got))
	}
	if tel.Total != 2 || tel.UDP443 != 1 || tel.TCPICMP != 1 {
		t.Errorf("counters: total=%d udp=%d tcpicmp=%d", tel.Total, tel.UDP443, tel.TCPICMP)
	}
	if tel.FirstSeen != inside.TS || tel.LastSeen != tcp.TS {
		t.Error("first/last seen wrong")
	}
}

func TestHourlyCounter(t *testing.T) {
	hc := NewHourlyCounter(func(p *Packet) string {
		if p.IsRequest() {
			return "req"
		}
		if p.IsResponse() {
			return "resp"
		}
		return ""
	})
	tel := New(hc)
	for i := 0; i < 5; i++ {
		tel.Capture(mkPacket(MeasurementStart.Add(time.Duration(i)*15*time.Minute), "1.1.1.1", "44.0.0.1", 999, 443))
	}
	tel.Capture(mkPacket(MeasurementStart.Add(26*time.Hour), "142.250.0.1", "44.0.0.2", 443, 999))
	// Out-of-window packet is dropped from bins.
	tel.Capture(mkPacket(MeasurementEnd.Add(time.Hour), "1.1.1.1", "44.0.0.1", 999, 443))

	if hc.TotalOf("req") != 5 {
		t.Errorf("req total = %d", hc.TotalOf("req"))
	}
	if hc.Series["req"][0] != 4 || hc.Series["req"][1] != 1 {
		t.Errorf("req bins = %v", hc.Series["req"][:2])
	}
	if hc.Series["resp"][26] != 1 {
		t.Errorf("resp bin 26 = %d", hc.Series["resp"][26])
	}
}

func TestHourlyCounterWeight(t *testing.T) {
	hc := NewHourlyCounter(func(*Packet) string { return "x" })
	p := mkPacket(MeasurementStart, "1.1.1.1", "44.0.0.1", 999, 443)
	p.Weight = 64
	hc.Capture(p)
	hc.Capture(mkPacket(MeasurementStart, "1.1.1.1", "44.0.0.1", 999, 443))
	if hc.TotalOf("x") != 65 {
		t.Errorf("weighted total = %d", hc.TotalOf("x"))
	}
	if p.EffectiveWeight() != 64 || (&Packet{}).EffectiveWeight() != 1 {
		t.Error("EffectiveWeight")
	}
}

func TestStoreRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	pkts := []*Packet{
		mkPacket(MeasurementStart, "1.2.3.4", "44.0.0.1", 1234, 443),
		{
			TS: TS(MeasurementStart.Add(time.Second)), Src: netmodel.MustAddr("142.250.0.9"),
			Dst: netmodel.MustAddr("44.1.2.3"), SrcPort: 443, DstPort: 9999,
			Proto: ProtoUDP, Size: 310, Payload: []byte{0xc0, 1, 2, 3, 4, 5},
		},
		{
			TS: TS(MeasurementStart.Add(2 * time.Second)), Src: netmodel.MustAddr("5.6.7.8"),
			Dst: netmodel.MustAddr("44.9.9.9"), Proto: ProtoTCP, Flags: FlagSYN | FlagACK, Size: 40,
		},
	}
	for _, p := range pkts {
		if err := w.Write(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Count() != 3 {
		t.Errorf("count = %d", w.Count())
	}

	r := NewReader(&buf)
	var got []*Packet
	if err := r.ForEach(func(p *Packet) error { got = append(got, p); return nil }); err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("read %d packets", len(got))
	}
	for i := range pkts {
		a, b := pkts[i], got[i]
		if a.TS != b.TS || a.Src != b.Src || a.Dst != b.Dst || a.SrcPort != b.SrcPort ||
			a.DstPort != b.DstPort || a.Proto != b.Proto || a.Flags != b.Flags || a.Size != b.Size {
			t.Errorf("record %d mismatch:\n%+v\n%+v", i, a, b)
		}
		if !bytes.Equal(a.Payload, b.Payload) {
			t.Errorf("record %d payload mismatch", i)
		}
	}
}

func TestStoreRejectsGarbage(t *testing.T) {
	r := NewReader(bytes.NewReader([]byte{1, 2, 3, 4, 5, 6, 7, 8}))
	if _, err := r.Read(); !errors.Is(err, ErrBadTrace) {
		t.Fatalf("err = %v", err)
	}
	// Truncated mid-record.
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Write(mkPacket(MeasurementStart, "1.1.1.1", "44.0.0.1", 1, 443)); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-3]
	r2 := NewReader(bytes.NewReader(trunc))
	if _, err := r2.Read(); !errors.Is(err, ErrBadTrace) {
		t.Fatalf("truncated err = %v", err)
	}
	// Empty stream yields EOF.
	r3 := NewReader(bytes.NewReader(nil))
	if _, err := r3.Read(); !errors.Is(err, io.EOF) {
		t.Fatalf("empty err = %v", err)
	}
}

func TestStoreRoundTripProperty(t *testing.T) {
	f := func(ts int64, src, dst uint32, sp, dp uint16, proto uint8, payload []byte) bool {
		if len(payload) > 1500 {
			payload = payload[:1500]
		}
		in := &Packet{
			TS: Timestamp(ts), Src: netmodel.Addr(src), Dst: netmodel.Addr(dst),
			SrcPort: sp, DstPort: dp, Proto: Proto(proto % 3),
			Size: uint16(len(payload)), Payload: payload,
		}
		var buf bytes.Buffer
		w := NewWriter(&buf)
		if err := w.Write(in); err != nil {
			return false
		}
		if err := w.Flush(); err != nil {
			return false
		}
		out, err := NewReader(&buf).Read()
		if err != nil {
			return false
		}
		return out.TS == in.TS && out.Src == in.Src && out.Dst == in.Dst &&
			out.SrcPort == in.SrcPort && out.DstPort == in.DstPort &&
			out.Proto == in.Proto && bytes.Equal(out.Payload, in.Payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestProtoStrings(t *testing.T) {
	if ProtoUDP.String() != "UDP" || ProtoTCP.String() != "TCP" || ProtoICMP.String() != "ICMP" {
		t.Error("proto strings")
	}
}
