package oracle

// Cross-validation: Observed is the projection of a pipeline Analysis
// onto the oracle's schema (built by quicsand.(*Analysis).OracleObserved),
// Evaluate compares it against an Expectation and returns every check
// with its verdict, Check filters the violations. All checks are
// exact-or-bounded: a failure is a real defect (or a new collision
// class the oracle must learn), never statistical noise.

import (
	"fmt"
	"sort"
	"strings"

	"quicsand/internal/netmodel"
	"quicsand/internal/report"
	"quicsand/internal/scenario"
	"quicsand/internal/telescope"
	"quicsand/internal/wire"
)

// ResponderObs aggregates one response-session source.
type ResponderObs struct {
	Sessions     int
	Packets      uint64
	RetryPackets uint64
	Start, End   telescope.Timestamp
	Versions     map[wire.Version]bool
}

// AttackObs is one detected QUIC attack.
type AttackObs struct {
	Victim         netmodel.Addr
	Packets        int
	DurationSec    float64
	MaxPPS         float64
	SpoofedClients int
	ClientPorts    int
	UniqueSCIDs    int
	Version        wire.Version
}

// Observed is everything the oracle validates, measured from one Run
// or Replay.
type Observed struct {
	TelescopeTotal      uint64
	UDP443              uint64
	TCPICMP             uint64
	ResearchPackets     uint64 // weighted TUM+RWTH Figure 2 total
	NonQUIC             uint64
	DistinctQUICSources int
	MixedSessions       int
	RequestSessions     int
	RequestPackets      uint64
	RequestSources      map[netmodel.Addr]uint64 // source → packets
	ResponseSessions    int
	ResponsePackets     uint64
	Responders          map[netmodel.Addr]*ResponderObs
	QUICAttacks         []AttackObs
	CommonAttacks       int
	CommonInspected     int
	// LostRecords is the salvage ledger's worst-case record loss
	// (telemetry SalvageMaxLost): the degraded-run error budget. Zero
	// — the norm — keeps every check exact; nonzero relaxes lower
	// bounds by the budget so a salvaged replay validates against what
	// provably survived (DESIGN.md §14).
	LostRecords uint64
}

// Result is one oracle check with its verdict. Exact states whether
// the prediction was zero-tolerance (vs a bounded interval). Detail
// marks a per-item row expanding a failed family — its family summary
// row already carries the verdict, so violation counts skip details.
type Result struct {
	Name   string `json:"name"`
	Want   string `json:"want"`
	Got    string `json:"got"`
	OK     bool   `json:"ok"`
	Exact  bool   `json:"exact"`
	Detail bool   `json:"detail,omitempty"`
}

// CountViolations returns the number of failed checks, counting a
// failed family (with however many detail rows) once.
func CountViolations(results []Result) int {
	n := 0
	for _, r := range results {
		if !r.OK && !r.Detail {
			n++
		}
	}
	return n
}

// Check evaluates and returns only the violations.
func Check(exp *Expectation, obs *Observed) []Result {
	var out []Result
	for _, r := range Evaluate(exp, obs) {
		if !r.OK {
			out = append(out, r)
		}
	}
	return out
}

// detailCap bounds per-item failure rows so a systematic breakage
// stays readable.
const detailCap = 8

// relaxRange lowers a prediction's floor by the degraded-run slack;
// the ceiling stands, because record loss never invents traffic.
func relaxRange(r Range, slack uint64) Range {
	if r.Min > slack {
		r.Min -= slack
	} else {
		r.Min = 0
	}
	return r
}

// group accumulates a per-item check family into one summary Result
// plus capped failure details.
type group struct {
	name          string
	total, failed int
	details       []Result
	exact         bool
}

func (g *group) fail(item, want, got string) {
	g.failed++
	if len(g.details) < detailCap {
		g.details = append(g.details, Result{
			Name: g.name + "[" + item + "]", Want: want, Got: got,
			Exact: g.exact, Detail: true,
		})
	}
}

func (g *group) flush(rs *[]Result) {
	kind := "bounded"
	if g.exact {
		kind = "exact"
	}
	*rs = append(*rs, Result{
		Name:  g.name,
		Want:  fmt.Sprintf("%d %s checks", g.total, kind),
		Got:   fmt.Sprintf("%d ok, %d violated", g.total-g.failed, g.failed),
		OK:    g.failed == 0,
		Exact: g.exact,
	})
	*rs = append(*rs, g.details...)
	if g.failed > len(g.details) {
		*rs = append(*rs, Result{
			Name: g.name + "[...]",
			Want: "", Got: fmt.Sprintf("+%d more violations", g.failed-len(g.details)),
			Exact: g.exact, Detail: true,
		})
	}
}

// Evaluate runs every oracle check. Results come most-aggregate first;
// per-item families contribute one summary row plus failure details.
func Evaluate(exp *Expectation, obs *Observed) []Result {
	var rs []Result
	exact := func(name string, want, got uint64) {
		rs = append(rs, Result{
			Name: name, Want: fmt.Sprint(want), Got: fmt.Sprint(got),
			OK: want == got, Exact: true,
		})
	}
	bounded := func(name string, want Range, got uint64) {
		rs = append(rs, Result{
			Name: name, Want: want.String(), Got: fmt.Sprint(got),
			OK: want.Contains(got), Exact: want.IsExact(),
		})
	}
	atMost := func(name string, cap int, got int) {
		rs = append(rs, Result{
			Name: name, Want: fmt.Sprintf("<= %d", cap), Got: fmt.Sprint(got),
			OK: got >= 0 && got <= cap,
		})
	}

	// Degraded-run error budget (DESIGN.md §14): each of the <= b
	// records lost inside salvaged spans can remove at most one packet
	// (weighted records up to ResearchThin telescope packets) from any
	// counter, so lower bounds relax by the budget while upper bounds
	// stand — loss never invents traffic. The budget applies marginally
	// per check: one lost record legitimately explains a one-packet
	// deficit in several derived counters at once.
	b := obs.LostRecords
	wb := b // weighted budget for research-thinned (Figure 2) counters
	if exp.ResearchThin > 1 {
		wb = b * uint64(exp.ResearchThin)
	}
	relax := relaxRange
	// exactD degrades an exact check into [want-slack, want] under a
	// nonzero budget.
	exactD := func(name string, want, got uint64, slack uint64) {
		if slack == 0 {
			exact(name, want, got)
			return
		}
		bounded(name, relax(Range{Min: want, Max: want}, slack), got)
	}
	if b > 0 {
		rs = append(rs, Result{
			Name: "salvage-budget", Want: "degraded run",
			Got: fmt.Sprintf("<= %d records lost", b), OK: true,
		})
	}

	// Cross-role collisions between scan bots and responders break the
	// request/response separation every session-level check leans on.
	botOverlap := false
	for _, c := range exp.Collisions {
		if strings.Contains(c, "scan bot") {
			botOverlap = true
		}
	}

	// Stream-level counters. The telescope/UDP443/TCP-ICMP totals count
	// raw records (weight-blind), so they relax by b; the Figure 2
	// research series and session packet sums count effective weights,
	// so a lost thinned record can cost up to ResearchThin — wb.
	bounded("research-packets", relax(exp.ResearchPacketRange(), wb), obs.ResearchPackets)
	exactD("tcp-icmp-packets", exp.CommonPackets, obs.TCPICMP, b)
	bounded("udp443-packets", relax(exp.UDP443Packets(), b), obs.UDP443)
	bounded("telescope-packets", relax(exp.TelescopePackets(), b), obs.TelescopeTotal)
	exact("non-quic", 0, obs.NonQUIC)
	exactD("distinct-quic-sources", uint64(exp.DistinctQUICSources()), uint64(obs.DistinctQUICSources), b)

	if !botOverlap {
		exact("mixed-sessions", 0, uint64(obs.MixedSessions))

		// Scan-wave coverage: the request-session source population is
		// exactly the scheduled bot set. Under a loss budget, up to b
		// single-visit sources may have vanished entirely; sources the
		// schedule never held can still not appear.
		srcs := &group{name: "request-sources", exact: b == 0}
		srcs.total = len(exp.ScanSources)
		missing := uint64(0)
		for a := range exp.ScanSources {
			if _, ok := obs.RequestSources[a]; !ok {
				missing++
				if missing > b {
					srcs.fail(a.String(), "requests observed", "source missing")
				}
			}
		}
		for a := range obs.RequestSources {
			if !exp.ScanSources[a] {
				srcs.total++
				srcs.fail(a.String(), "scheduled bot", "unscheduled request source")
			}
		}
		srcs.flush(&rs)

		bounded("request-packets", relax(exp.RequestPackets(), wb), obs.RequestPackets)
		bounded("response-packets", relax(exp.ResponsePackets(), b), obs.ResponsePackets)
		bounded("request-sessions", relax(Range{
			Min: uint64(len(exp.ScanSources)),
			Max: exp.RequestPackets().Max,
		}, b), uint64(obs.RequestSessions))
		bounded("response-sessions", relax(Range{
			Min: uint64(exp.RespondersExpected()),
			Max: exp.ResponsePackets().Max,
		}, b), uint64(obs.ResponseSessions))
		exactD("responders", uint64(exp.RespondersExpected()), uint64(len(obs.Responders)), b)

		evalResponders(exp, obs, &rs, b)
	}

	// Table 1 flood classification (bounded by the rate/duration caps).
	// Attack caps gain +b slack: a lost-record gap can split one flood
	// into multiple detected attacks.
	atMost("quic-attacks", exp.QUICAttackCap()+int(b), len(obs.QUICAttacks))
	evalAttacks(exp, obs, &rs, b)
	atMost("common-attacks", exp.CommonAttackCap()+int(b), obs.CommonAttacks)
	bounded("common-sessions", relax(exp.CommonSessionBounds(), b), uint64(obs.CommonInspected))

	// Per-phase attribution where source sets are disjoint.
	phases := &group{name: "phase-packets"}
	for i := range exp.Phases {
		p := &exp.Phases[i]
		if !p.Measurable {
			continue
		}
		phases.total++
		var sum uint64
		for a := range p.Sources {
			if p.Response {
				if r := obs.Responders[a]; r != nil {
					sum += r.Packets
				}
			} else {
				sum += obs.RequestSources[a]
			}
		}
		pr := relax(p.Packets, wb)
		if !pr.Contains(sum) {
			phases.fail(p.Label, pr.String(), fmt.Sprint(sum))
		}
	}
	if botOverlap {
		phases.total = 0 // per-source sums are unreliable under collisions
	} else {
		phases.flush(&rs)
	}
	return rs
}

// evalResponders runs the per-responder families: membership, exact
// packet volumes, bracket spans, version subsets, Retry volumes. A
// nonzero budget b (salvaged replay) relaxes per-victim packet floors,
// downgrades span equality to containment (edge records of a bracket
// may be lost), and tolerates responders whose relaxed floor reaches
// zero vanishing outright.
func evalResponders(exp *Expectation, obs *Observed, rs *[]Result, b uint64) {
	member := &group{name: "responder-known", exact: true}
	packets := &group{name: "victim-packets", exact: b == 0}
	spans := &group{name: "victim-span", exact: b == 0}
	versions := &group{name: "responder-versions", exact: true}
	retry := &group{name: "responder-retry"}
	sanitized := &group{name: "sanitized-victims", exact: true}
	misconf := &group{name: "misconf-window", exact: true}

	addrs := make([]netmodel.Addr, 0, len(obs.Responders))
	for a := range obs.Responders {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })

	for _, a := range addrs {
		r := obs.Responders[a]
		v := exp.Victims[a]
		me := exp.Misconf[a]
		member.total++
		switch {
		case v != nil && !v.Sanitized:
			packets.total++
			if pr := relaxRange(v.PacketRange, b); !pr.Contains(r.Packets) {
				packets.fail(a.String(), pr.String(), fmt.Sprint(r.Packets))
			}
			if !v.Degraded {
				spans.total++
				if b == 0 {
					if r.Start != v.First || r.End != v.Last {
						spans.fail(a.String(),
							fmt.Sprintf("[%d, %d]", v.First, v.Last),
							fmt.Sprintf("[%d, %d]", r.Start, r.End))
					}
				} else if r.Start < v.First || r.End > v.Last {
					// Lost records can shrink the observed bracket but
					// never widen it past the schedule.
					spans.fail(a.String(),
						fmt.Sprintf("within [%d, %d]", v.First, v.Last),
						fmt.Sprintf("[%d, %d]", r.Start, r.End))
				}
			}
			versions.total++
			for ver := range r.Versions {
				if !v.Versions[ver] && !(v.Degraded && me != nil && me.Version == ver) {
					versions.fail(a.String(), "compiled version set", "unscheduled "+ver.String())
				}
			}
			retry.total++
			if !v.AnyRetry && r.RetryPackets != 0 {
				retry.fail(a.String(), "0 Retry packets", fmt.Sprint(r.RetryPackets))
			} else if r.RetryPackets > r.Packets {
				retry.fail(a.String(), "<= total packets", fmt.Sprint(r.RetryPackets))
			}
		case me != nil:
			packets.total++
			if pr := relaxRange(me.Packets, b); !pr.Contains(r.Packets) {
				packets.fail(a.String(), pr.String(), fmt.Sprint(r.Packets))
			}
			misconf.total++
			if r.Start < me.WindowStart {
				misconf.fail(a.String(), fmt.Sprintf(">= %d", me.WindowStart), fmt.Sprint(r.Start))
			}
			versions.total++
			for ver := range r.Versions {
				if ver != me.Version {
					versions.fail(a.String(), me.Version.String(), "unscheduled "+ver.String())
				}
			}
			retry.total++
			if r.RetryPackets != 0 {
				retry.fail(a.String(), "0 Retry packets", fmt.Sprint(r.RetryPackets))
			}
		default:
			member.fail(a.String(), "scheduled victim or responder", "unscheduled response source")
		}
	}
	for a, v := range exp.Victims {
		if v.Sanitized {
			sanitized.total++
			if obs.Responders[a] != nil {
				sanitized.fail(a.String(), "sanitized away", "responder present")
			}
			continue
		}
		if obs.Responders[a] == nil {
			packets.total++
			// Under a loss budget, a responder whose relaxed floor
			// reaches zero may have vanished entirely with the damaged
			// span.
			if pr := relaxRange(v.PacketRange, b); pr.Min > 0 {
				packets.fail(a.String(), pr.String(), "no responder")
			}
		}
	}
	for a, me := range exp.Misconf {
		if _, isVictim := exp.Victims[a]; isVictim {
			continue
		}
		if obs.Responders[a] == nil {
			packets.total++
			if pr := relaxRange(me.Packets, b); pr.Min > 0 {
				packets.fail(a.String(), pr.String(), "no responder")
			}
		}
	}

	member.flush(rs)
	packets.flush(rs)
	spans.flush(rs)
	versions.flush(rs)
	retry.flush(rs)
	sanitized.flush(rs)
	misconf.flush(rs)
}

// evalAttacks validates every detected attack against its victim's
// schedule-derived anatomy caps. The per-victim attack-count limit
// gains +b slack under a loss budget (a gap can split one flood into
// several detections); the anatomy upper bounds stand, since loss
// never inflates a single attack.
func evalAttacks(exp *Expectation, obs *Observed, rs *[]Result, b uint64) {
	g := &group{name: "attack-anatomy"}
	perVictim := make(map[netmodel.Addr]int)
	for i := range obs.QUICAttacks {
		atk := &obs.QUICAttacks[i]
		g.total++
		perVictim[atk.Victim]++
		v := exp.Victims[atk.Victim]
		me := exp.Misconf[atk.Victim]
		switch {
		case v != nil && !v.Sanitized:
			if uint64(atk.Packets) > v.PacketRange.Max {
				g.fail(atk.Victim.String(), fmt.Sprintf("<= %d pkts", v.PacketRange.Max), fmt.Sprint(atk.Packets))
			}
			if atk.SpoofedClients > v.MaxSpoofedClients {
				g.fail(atk.Victim.String(), fmt.Sprintf("<= %d clients", v.MaxSpoofedClients), fmt.Sprint(atk.SpoofedClients))
			}
			if atk.ClientPorts > v.MaxClientPorts {
				g.fail(atk.Victim.String(), fmt.Sprintf("<= %d ports", v.MaxClientPorts), fmt.Sprint(atk.ClientPorts))
			}
			if atk.Version != 0 && !v.Versions[atk.Version] && !(v.Degraded && me != nil && me.Version == atk.Version) {
				g.fail(atk.Victim.String(), "compiled version set", "dominant "+atk.Version.String())
			}
		case me != nil:
			if uint64(atk.Packets) > me.Packets.Max {
				g.fail(atk.Victim.String(), fmt.Sprintf("<= %d pkts", me.Packets.Max), fmt.Sprint(atk.Packets))
			}
			if atk.Version != 0 && atk.Version != me.Version {
				g.fail(atk.Victim.String(), me.Version.String(), "dominant "+atk.Version.String())
			}
		default:
			g.fail(atk.Victim.String(), "scheduled victim or responder", "attack on unscheduled source")
		}
	}
	caps := &group{name: "attacks-per-victim"}
	for a, n := range perVictim {
		caps.total++
		limit := 0
		if v := exp.Victims[a]; v != nil && !v.Sanitized {
			limit = v.AttackCap
			if me := exp.Misconf[a]; me != nil {
				limit += me.AttackCap
			}
		} else if me := exp.Misconf[a]; me != nil {
			limit = me.AttackCap
		}
		limit += int(b)
		if n > limit {
			caps.fail(a.String(), fmt.Sprintf("<= %d attacks", limit), fmt.Sprint(n))
		}
	}
	g.flush(rs)
	caps.flush(rs)
}

// phaseTable renders the per-phase schedule prediction: event loads,
// packet volumes (exact for floods), amplification ratios, Retry
// mitigation and the compiled version mix per phase.
func phaseTable(exp *Expectation) string {
	if len(exp.Phases) == 0 {
		return ""
	}
	var rows [][]string
	for i := range exp.Phases {
		p := &exp.Phases[i]
		extra := ""
		if p.Kind == scenario.KindFlood {
			extra = fmt.Sprintf("%d victims, x%.2f amp", p.Victims, p.AmpRatio)
			if p.Retry {
				extra += ", retry"
			}
		}
		rows = append(rows, []string{
			p.Label, p.Kind, fmt.Sprint(p.Events), p.Packets.String(),
			versionMixString(p.Versions), extra,
		})
	}
	return report.Table(
		[]string{"phase", "kind", "events", "packets", "version mix", "notes"}, rows)
}

// versionMixString renders a version histogram as stable
// "version:count" pairs (the scheduled mix measured dominant versions
// must be drawn from; Expectation.EventVersions aggregates it over
// all flood phases).
func versionMixString(m map[wire.Version]int) string {
	if len(m) == 0 {
		return "-"
	}
	versions := make([]wire.Version, 0, len(m))
	for v := range m {
		versions = append(versions, v)
	}
	sort.Slice(versions, func(i, j int) bool { return versions[i] < versions[j] })
	parts := make([]string, 0, len(versions))
	for _, v := range versions {
		parts = append(parts, fmt.Sprintf("%s:%d", v, m[v]))
	}
	return strings.Join(parts, " ")
}

// Report renders an evaluation as an expected-vs-observed table
// (internal/report) with a one-line verdict.
func Report(exp *Expectation, results []Result) string {
	var rows [][]string
	for _, r := range results {
		status := "ok"
		if !r.OK {
			status = "VIOLATED"
		}
		kind := "bounded"
		if r.Exact {
			kind = "exact"
		}
		rows = append(rows, []string{r.Name, kind, r.Want, r.Got, status})
	}
	violations := CountViolations(results)
	var b strings.Builder
	fmt.Fprintf(&b, "oracle: %s (seed %d, scale %g)\n", exp.Scenario, exp.Seed, exp.Scale)
	b.WriteString(phaseTable(exp))
	if len(exp.EventVersions) > 0 {
		fmt.Fprintf(&b, "scheduled QUIC flood version mix: %s\n", versionMixString(exp.EventVersions))
	}
	b.WriteString(report.Table([]string{"check", "class", "expected", "observed", "status"}, rows))
	if len(exp.Collisions) > 0 {
		fmt.Fprintf(&b, "degraded: %s\n", strings.Join(exp.Collisions, "; "))
	}
	if violations == 0 {
		b.WriteString("verdict: all oracle checks hold\n")
	} else {
		fmt.Fprintf(&b, "verdict: %d VIOLATED checks\n", violations)
	}
	return b.String()
}
