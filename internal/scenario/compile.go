package scenario

// Compilation turns a validated Scenario into a scheduled ibr
// generator. Everything declarative resolves here, at setup time —
// victim pools against the census, version-mix strings into wire
// versions, SCID policies into pooling ratios, rate shapes into event
// builder knobs — so the streaming hot path runs the same
// allocation-free event sources as the paper schedule.
//
// Determinism contract: phases compile in spec order, each under an
// index-qualified RNG label, so a (seed, scenario) pair fixes the
// entire month bit-for-bit — independent of worker count, and of
// whether packets are generated live or replayed from a checkpoint.

import (
	"fmt"

	"quicsand/internal/ibr"
	"quicsand/internal/netmodel"
	"quicsand/internal/wire"
)

// Compile schedules the scenario onto a generator built from cfg. The
// paper-2021 scenario maps to the hard-coded schedule (ibr.New);
// everything else compiles phase by phase onto an empty generator.
func Compile(sc *Scenario, cfg ibr.Config) (*ibr.Generator, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	if sc.Paper {
		return ibr.New(cfg)
	}
	g, err := ibr.NewEmpty(cfg)
	if err != nil {
		return nil, err
	}
	for i := range sc.Phases {
		ph := &sc.Phases[i]
		name := ph.Label
		if name == "" {
			name = ph.Kind
		}
		label := fmt.Sprintf("%d/%s", i, name)
		if err := compilePhase(g, ph, label); err != nil {
			return nil, fmt.Errorf("scenario %q: phase %d (%s): %w", sc.Name, i, name, err)
		}
	}
	return g, nil
}

func compilePhase(g *ibr.Generator, ph *Phase, label string) error {
	start, dur := ph.Window()
	switch ph.Kind {
	case KindResearchScan:
		g.AddResearchPlan(label, ibr.ResearchPlan{
			Sweeps:     ph.Sweeps,
			SweepHours: ph.SweepHours,
			StartSec:   start,
			DurSec:     dur,
		})
	case KindScan:
		versions, weights := versionMix(ph.Versions)
		tagShare := -1.0 // unset: the plan's 2.3 % default
		if ph.TagShare != nil {
			tagShare = *ph.TagShare
		}
		g.AddScanPlan(label, ibr.ScanPlan{
			Bots:            ph.Sources,
			Versions:        versions,
			VersionWeights:  weights,
			VisitsMean:      ph.VisitsMean,
			PacketsPerVisit: ph.PacketsPerVisit,
			Diurnal:         ph.Diurnal,
			NoPayload:       ph.NoPayload,
			TagShare:        tagShare,
			StartSec:        start,
			DurSec:          dur,
		})
	case KindFlood:
		victims, err := resolveVictims(g, ph.Victims, label)
		if err != nil {
			return err
		}
		versions, weights := versionMix(ph.Versions)
		events := g.AddFloodPlan(label, ibr.FloodPlan{
			Vector:         vectorOf(ph.Vector),
			Attacks:        ph.Attacks,
			Victims:        victims,
			Skew:           ph.Victims.Skew,
			Versions:       versions,
			VersionWeights: weights,
			DurMedianSec:   ph.Duration.MedianSec,
			DurSigma:       ph.Duration.Sigma,
			BasePPS:        ph.Rate.BasePPS,
			PeakPkts:       ph.Rate.PeakPkts,
			Shape:          shapeOf(ph.Rate.Shape),
			SCIDRatio:      scidRatioOf(ph),
			RetryMitigated: ph.RetryMitigation,
			Amplification:  ph.Amplification,
			StartSec:       start,
			DurSec:         dur,
		})
		if ph.Pair != nil {
			g.AddPairedCommon(label+"/pair", events, ibr.PairPlan{
				ConcurrentShare: ph.Pair.ConcurrentShare,
				SequentialShare: ph.Pair.SequentialShare,
			})
		}
	case KindMisconfig:
		g.AddMisconfigPlan(label, ibr.MisconfigPlan{
			Sources:    ph.Sources,
			VisitsMean: ph.VisitsMean,
			StartSec:   start,
			DurSec:     dur,
		})
	default: // unreachable after Validate
		return fmt.Errorf("unknown kind %q", ph.Kind)
	}
	return nil
}

// versionMix resolves a validated version-share list; empty mixes keep
// the plan defaults.
func versionMix(shares []VersionShare) ([]wire.Version, []float64) {
	if len(shares) == 0 {
		return nil, nil
	}
	versions := make([]wire.Version, len(shares))
	weights := make([]float64, len(shares))
	for i, vs := range shares {
		versions[i] = versionByName[vs.Version]
		weights[i] = vs.Share
	}
	return versions, weights
}

func vectorOf(s string) int {
	switch s {
	case "tcp":
		return ibr.VectorTCP
	case "icmp":
		return ibr.VectorICMP
	case "common-mix":
		return ibr.VectorCommonMix
	default:
		return ibr.VectorQUIC
	}
}

func shapeOf(s string) uint8 {
	switch s {
	case "square":
		return ibr.ShapeSquare
	case "ramp":
		return ibr.ShapeRamp
	default:
		return ibr.ShapeBurst
	}
}

// scidRatioOf maps the pooling policy onto the fresh-SCID probability:
// "fresh" models per-connection contexts (Google's anatomy in Figure
// 9), "pooled" mvfst-style context reuse, "mixed" the population
// average. An explicit scid_ratio wins — including an explicit 0
// (never fresh, always pool).
func scidRatioOf(ph *Phase) float64 {
	if ph.SCIDRatio != nil {
		return *ph.SCIDRatio
	}
	switch ph.SCIDPolicy {
	case "fresh":
		return 0.95
	case "pooled":
		return 0.30
	default:
		return 0.6
	}
}

// resolveVictims draws the phase's victim pool. Org pools come from
// the census; "unknown" draws content hosts the census missed;
// "internet" reproduces the paper's common-flood victim mix across all
// network classes.
func resolveVictims(g *ibr.Generator, pool VictimPool, label string) ([]ibr.VictimRef, error) {
	rng := g.ForkRNG(label + "/victims")
	census := g.Census()
	in := g.Internet()
	size := g.Scaled(float64(pool.Size))

	// drawDistinct fills a pool from an address generator with a
	// bounded try budget: an oversized pool (huge Scale against a
	// finite address space) degrades to fewer victims, like
	// ibr.PickDistinctVictims, instead of spinning forever. ok=false
	// draws are skipped (e.g. census hits for the "unknown" pool).
	drawDistinct := func(draw func() (netmodel.Addr, string, bool)) []ibr.VictimRef {
		out := make([]ibr.VictimRef, 0, size)
		seen := make(map[netmodel.Addr]bool, size)
		for tries := 0; len(out) < size && tries < 64*size+1024; tries++ {
			a, org, ok := draw()
			if !ok || seen[a] {
				continue
			}
			seen[a] = true
			out = append(out, ibr.VictimRef{Addr: a, Org: org})
		}
		return out
	}

	var out []ibr.VictimRef
	switch pool.Org {
	case "", "any":
		out = ibr.PickDistinctVictims(census.Servers, size, rng)
	case "unknown":
		out = drawDistinct(func() (netmodel.Addr, string, bool) {
			a := in.RandomHostOf(netmodel.ASNCloudflare, rng)
			return a, "Unknown", !census.IsKnown(a)
		})
	case "internet":
		out = drawDistinct(func() (netmodel.Addr, string, bool) {
			a := ibr.RandomCommonVictim(in, rng)
			// Hosts outside the census keep the VictimRef contract's
			// "Unknown" label rather than an empty org.
			org := census.OrgOf(a)
			if org == "" {
				org = "Unknown"
			}
			return a, org, true
		})
	default:
		servers := census.ByOrg(pool.Org)
		if len(servers) == 0 {
			return nil, fmt.Errorf("no census servers for org %q", pool.Org)
		}
		out = ibr.PickDistinctVictims(servers, size, rng)
	}
	if len(out) == 0 {
		// An empty pool would make AddFloodPlan silently drop the whole
		// phase — fail as loudly as an unknown org does.
		return nil, fmt.Errorf("victim pool %q resolved to zero hosts", pool.Org)
	}
	return out, nil
}
