// Package losertree implements a tournament ("loser") tree over k
// integer-indexed entries: the classic k-way merge accelerator. The
// tree stores only int32 entry indices; callers keep the actual keys
// and supply an ordering. Advancing after the winner's key changes
// costs ⌈log2 k⌉ comparisons with no interface boxing or heap sift
// allocations — the structure both the ibr source merger and the
// engine's tap merge run their per-packet loops on.
//
// The ordering must be a strict total order over live entry indices
// (break key ties by index); exhausted entries are modelled by making
// them compare after every live one.
package losertree

// Tree is a loser tree over entries 0..k-1. The zero value is unusable;
// call New.
type Tree struct {
	k int
	// losers[0] holds the champion entry index; losers[1:] hold the
	// loser parked at each internal tournament node. -1 marks slots
	// not yet filled during a build.
	losers []int32
	less   func(a, b int32) bool
}

// New builds a tree over k entries ordered by less. less(a, b) reports
// whether entry a must win against entry b; it must be a strict total
// order.
func New(k int, less func(a, b int32) bool) *Tree {
	t := &Tree{less: less}
	t.Reset(k)
	return t
}

// Reset rebuilds the tournament over k entries (reusing storage).
// Use it after the entry set changes shape; for a single entry's key
// change, Fix is O(log k) instead.
//
// The build replays every leaf into an empty tree: a replay parks at
// the first empty node it meets, so after k replays each internal
// node holds its comparison's loser and losers[0] the champion.
func (t *Tree) Reset(k int) {
	t.k = k
	if cap(t.losers) < k {
		t.losers = make([]int32, k)
	}
	t.losers = t.losers[:k]
	for i := range t.losers {
		t.losers[i] = -1
	}
	for j := 0; j < k; j++ {
		t.Fix(int32(j))
	}
}

// Winner returns the current champion entry index, or -1 for an empty
// tree.
func (t *Tree) Winner() int32 {
	if t.k == 0 {
		return -1
	}
	return t.losers[0]
}

// Fix replays entry j's tournament path after its key changed
// (advanced to its next item, or exhausted): the climber swaps with
// any parked loser it cannot beat, and the path's final winner becomes
// the champion. Leaf j's parent is node (j+k)/2, halving up to the
// root — valid for any k, not just powers of two.
func (t *Tree) Fix(j int32) {
	winner := j
	for n := (int(j) + t.k) / 2; n > 0; n /= 2 {
		if t.losers[n] == -1 {
			t.losers[n] = winner
			return
		}
		if t.less(t.losers[n], winner) {
			winner, t.losers[n] = t.losers[n], winner
		}
	}
	t.losers[0] = winner
}
