package wire

// Packet number encoding and recovery, RFC 9000 §17.1 and Appendix A.

// AppendPacketNumber appends the low pnLen bytes of pn (big endian).
func AppendPacketNumber(dst []byte, pn uint64, pnLen int) []byte {
	switch pnLen {
	case 1:
		return append(dst, byte(pn))
	case 2:
		return append(dst, byte(pn>>8), byte(pn))
	case 3:
		return append(dst, byte(pn>>16), byte(pn>>8), byte(pn))
	case 4:
		return append(dst, byte(pn>>24), byte(pn>>16), byte(pn>>8), byte(pn))
	}
	panic("wire: invalid packet number length")
}

// PacketNumberLen returns the smallest encoding length that lets a
// receiver who has seen largestAcked recover pn unambiguously.
func PacketNumberLen(pn, largestAcked uint64) int {
	numUnacked := pn - largestAcked
	switch {
	case numUnacked < 1<<7:
		return 1
	case numUnacked < 1<<15:
		return 2
	case numUnacked < 1<<23:
		return 3
	default:
		return 4
	}
}

// DecodePacketNumber reconstructs a full packet number from its
// truncated wire encoding, per the sample algorithm in RFC 9000
// Appendix A.3.
func DecodePacketNumber(largest uint64, truncated uint64, pnLen int) uint64 {
	expected := largest + 1
	win := uint64(1) << (pnLen * 8)
	hwin := win / 2
	mask := win - 1
	candidate := (expected &^ mask) | truncated
	if candidate+hwin <= expected && candidate+win < (1<<62) {
		return candidate + win
	}
	if candidate > expected+hwin && candidate >= win {
		return candidate - win
	}
	return candidate
}
