// Package quicsand reproduces the measurement pipeline of "QUICsand:
// Quantifying QUIC Reconnaissance Scans and DoS Flooding Events"
// (Nawrocki et al., ACM IMC 2021).
//
// The package ties the substrates together into the paper's analysis:
//
//	simulated Internet (internal/netmodel)
//	    → background-radiation generators (internal/ibr)
//	    → /9 telescope capture (internal/telescope)
//	    → QUIC dissection (internal/dissect, RFC 9000/9001 via
//	      internal/wire, internal/quiccrypto, internal/tlsmini)
//	    → sessionization (internal/sessions)
//	    → DoS detection (internal/dosdetect)
//	    → multi-vector correlation (internal/correlate)
//	    → joins against PeeringDB/GreyNoise/active-scan substitutes
//
// Run executes the whole month and returns an Analysis whose Figure*
// and Headline methods regenerate every figure and table of the
// paper's evaluation (see EXPERIMENTS.md for the paper-vs-measured
// record). The server-side DoS benchmark (Table 1) lives in
// internal/flood with real handshake machinery from internal/quicserver
// and internal/quicclient.
package quicsand

import (
	"fmt"

	"quicsand/internal/activescan"
	"quicsand/internal/correlate"
	"quicsand/internal/dissect"
	"quicsand/internal/dosdetect"
	"quicsand/internal/greynoise"
	"quicsand/internal/ibr"
	"quicsand/internal/netmodel"
	"quicsand/internal/sessions"
	"quicsand/internal/stats"
	"quicsand/internal/telescope"
)

// Config parameterizes a full pipeline run.
type Config struct {
	// Seed fixes all randomness; runs are bit-reproducible.
	Seed uint64
	// Scale multiplies event counts; 1.0 reproduces paper-scale
	// session and attack magnitudes (see DESIGN.md §5).
	Scale float64
	// ResearchThin is the research-scan thinning weight (default 64).
	ResearchThin uint32
	// SkipResearch omits research scanners (fast shape-only runs;
	// Figure 2 then lacks its dominant series).
	SkipResearch bool
	// Trace, when set, receives every captured packet (checkpointing).
	Trace telescope.Sink
}

// Analysis is the result of one pipeline run: every figure's data,
// recomputed from the packet stream.
type Analysis struct {
	Config   Config
	Internet *netmodel.Internet
	Census   *activescan.Census
	Truth    *ibr.GroundTruth

	// Telescope overview (§5.1).
	Telescope *telescope.Telescope
	// HourlySource bins all QUIC packets by source family
	// ("TUM-Scans", "RWTH-Scans", "Other") — Figure 2.
	HourlySource *telescope.HourlyCounter
	// HourlyType bins sanitized QUIC packets ("Requests",
	// "Responses") — Figure 3.
	HourlyType *telescope.HourlyCounter

	// Sanitized QUIC sessions (requests and responses).
	QUICSessions     []*sessions.Session
	RequestSessions  []*sessions.Session
	ResponseSessions []*sessions.Session
	Sweep            *sessions.TimeoutSweep

	// Detection results.
	QUICDetector   *dosdetect.Detector
	CommonDetector *dosdetect.Detector
	Correlation    *correlate.Summary

	// Joins.
	GreyNoise   *greynoise.Store
	ScanSources *greynoise.SourceStats

	// NonQUIC counts UDP/443 packets rejected by deep dissection
	// (the false-positive filter ablation).
	NonQUIC uint64
}

// Run generates the month and performs every analysis stage in one
// streaming pass.
func Run(cfg Config) (*Analysis, error) {
	gen, err := ibr.New(ibr.Config{
		Seed:         cfg.Seed,
		Scale:        cfg.Scale,
		ResearchThin: cfg.ResearchThin,
		SkipResearch: cfg.SkipResearch,
	})
	if err != nil {
		return nil, fmt.Errorf("quicsand: generator: %w", err)
	}

	a := &Analysis{Config: cfg}
	a.Internet = netmodel.BuildInternet()
	tum := a.Internet.Registry.ByASN(netmodel.ASNTUM)
	rwth := a.Internet.Registry.ByASN(netmodel.ASNRWTH)

	a.HourlySource = telescope.NewHourlyCounter(func(p *telescope.Packet) string {
		if !p.IsQUICCandidate() {
			return ""
		}
		switch {
		case tum.Prefixes[0].Contains(p.Src):
			return "TUM-Scans"
		case rwth.Prefixes[0].Contains(p.Src):
			return "RWTH-Scans"
		default:
			return "Other"
		}
	})
	a.HourlyType = telescope.NewHourlyCounter(nil) // classify set below

	a.Sweep = sessions.NewTimeoutSweep()
	quicSessionizer := sessions.NewSessionizer(func(s *sessions.Session) {
		a.QUICSessions = append(a.QUICSessions, s)
	})
	quicSessionizer.GapRecorder = a.Sweep.RecordGap
	commonSessionizer := sessions.NewSessionizer(nil)

	a.QUICDetector = dosdetect.NewDetector(dosdetect.VectorQUIC)
	a.CommonDetector = dosdetect.NewDetector(dosdetect.VectorCommon)
	a.CommonDetector.DropExcluded = true
	commonSessionizer.Emit = a.CommonDetector.Offer

	dis := dissect.NewDissector()

	a.HourlyType.Classify = func(p *telescope.Packet) string {
		if p.IsRequest() {
			return "Requests"
		}
		if p.IsResponse() {
			return "Responses"
		}
		return ""
	}

	tel := telescope.New()
	a.Telescope = tel
	tel.Attach(telescope.SinkFunc(func(p *telescope.Packet) {
		if cfg.Trace != nil {
			cfg.Trace.Capture(p)
		}
		a.HourlySource.Capture(p)

		// §5.1 sanitization: drop research scanners before analysis.
		if a.Internet.IsResearchSource(p.Src) {
			return
		}
		switch p.Proto {
		case telescope.ProtoTCP, telescope.ProtoICMP:
			commonSessionizer.Observe(p, nil)
		case telescope.ProtoUDP:
			if !p.IsQUICCandidate() {
				return
			}
			var res *dissect.Result
			if p.Payload != nil {
				r, err := dis.Dissect(p.Payload)
				if err != nil {
					a.NonQUIC++
					return
				}
				res = r
			}
			a.HourlyType.Capture(p)
			a.Sweep.RecordSource(p.Src)
			quicSessionizer.Observe(p, res)
		}
	}))

	a.Truth = gen.Run(tel.Capture)
	quicSessionizer.Flush()
	commonSessionizer.Flush()

	// Census shared with the generator (same seed path).
	a.Census = activescan.Build(a.Internet, netmodel.NewRNG(cfg.Seed).Fork("census"), activescan.Config{})

	for _, s := range a.QUICSessions {
		switch s.Kind() {
		case sessions.KindRequestOnly:
			a.RequestSessions = append(a.RequestSessions, s)
		case sessions.KindResponseOnly:
			a.ResponseSessions = append(a.ResponseSessions, s)
			a.QUICDetector.Offer(s)
		default:
			// Mixed sessions would contradict the paper's disjointness
			// observation; surface them loudly in results.
			a.RequestSessions = append(a.RequestSessions, s)
		}
	}

	a.Correlation = correlate.Correlate(a.QUICDetector.Sorted(), a.CommonDetector.Sorted())

	// GreyNoise join over request-session sources.
	a.GreyNoise = greynoise.NewStore(a.Internet.Registry)
	for addr, tags := range a.Truth.TaggedBots {
		a.GreyNoise.Tag(addr, tags...)
	}
	var srcs []netmodel.Addr
	seen := map[netmodel.Addr]bool{}
	for _, s := range a.RequestSessions {
		if !seen[s.Src] {
			seen[s.Src] = true
			srcs = append(srcs, s.Src)
		}
	}
	a.ScanSources = a.GreyNoise.Summarize(srcs)
	return a, nil
}

// Victims returns the unique QUIC flood victims.
func (a *Analysis) Victims() []netmodel.Addr {
	counts := dosdetect.VictimCounts(a.QUICDetector.Attacks)
	out := make([]netmodel.Addr, 0, len(counts))
	for v := range counts {
		out = append(out, v)
	}
	return out
}

// OrgShare returns the percentage of QUIC attacks whose victim belongs
// to the named census operator.
func (a *Analysis) OrgShare(org string) float64 {
	if len(a.QUICDetector.Attacks) == 0 {
		return 0
	}
	n := 0
	for _, atk := range a.QUICDetector.Attacks {
		if a.Census.OrgOf(atk.Victim) == org {
			n++
		}
	}
	return float64(n) / float64(len(a.QUICDetector.Attacks)) * 100
}

// AttackDurations returns the duration samples for the given vector.
func (a *Analysis) AttackDurations(vec dosdetect.Vector) []float64 {
	det := a.QUICDetector
	if vec == dosdetect.VectorCommon {
		det = a.CommonDetector
	}
	out := make([]float64, 0, len(det.Attacks))
	for _, atk := range det.Attacks {
		out = append(out, atk.Duration())
	}
	return out
}

// AttackIntensities returns max-pps samples for the given vector.
func (a *Analysis) AttackIntensities(vec dosdetect.Vector) []float64 {
	det := a.QUICDetector
	if vec == dosdetect.VectorCommon {
		det = a.CommonDetector
	}
	out := make([]float64, 0, len(det.Attacks))
	for _, atk := range det.Attacks {
		out = append(out, atk.MaxPPS)
	}
	return out
}

// MessageMix aggregates the §6 packet-type mix over attack
// backscatter: Initial share, Handshake share, other.
func (a *Analysis) MessageMix() (initial, handshake, other float64) {
	n := 0
	for _, atk := range a.QUICDetector.Attacks {
		initial += atk.InitialShare
		handshake += atk.HandshakeShare
		n++
	}
	if n == 0 {
		return 0, 0, 0
	}
	initial /= float64(n)
	handshake /= float64(n)
	return initial * 100, handshake * 100, 100 - (initial+handshake)*100
}

// TypeMatrix computes Figure 5: session counts per (network type,
// session kind).
func (a *Analysis) TypeMatrix() map[netmodel.NetworkType][2]int {
	m := make(map[netmodel.NetworkType][2]int)
	for _, s := range a.RequestSessions {
		t := a.Internet.Registry.TypeOf(s.Src)
		e := m[t]
		e[0]++
		m[t] = e
	}
	for _, s := range a.ResponseSessions {
		t := a.Internet.Registry.TypeOf(s.Src)
		e := m[t]
		e[1]++
		m[t] = e
	}
	return m
}

// ExcludedProfile summarizes the Appendix B non-attack backscatter
// sessions (median packets, duration, max pps).
func (a *Analysis) ExcludedProfile() (pkts, durSec, maxPPS float64) {
	var ps, ds, rs []float64
	for _, s := range a.QUICDetector.Excluded {
		ps = append(ps, float64(s.Packets))
		ds = append(ds, s.Duration())
		rs = append(rs, s.MaxPPS())
	}
	return stats.Median(ps), stats.Median(ds), stats.Median(rs)
}
