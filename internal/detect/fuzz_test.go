package detect

import (
	"testing"
)

// FuzzLoadConfig hardens the detector-config loader the way
// scenario.FuzzLoad hardens the spec loader: arbitrary bytes must
// either yield a validated configuration or a clean error — never a
// panic, and never a config that fails its own Validate (the invariant
// NewShard relies on).
func FuzzLoadConfig(f *testing.F) {
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"window":"30s","buckets":4,"rate_pps":1.5,"min_initial_fraction":0.8,"min_cid_ratio":0.4,"min_packets":10,"max_sources":128}`))
	f.Add([]byte(`{"window":"1ms","buckets":2}`))
	f.Add([]byte(`{"window":"-5s"}`))
	f.Add([]byte(`{"window":"banana"}`))
	f.Add([]byte(`{"rate_pps":0}`))
	f.Add([]byte(`{"rate_pps":1e309}`))
	f.Add([]byte(`{"min_packets":-3}`))
	f.Add([]byte(`{"typoed_knob":1}`))
	f.Add([]byte(`{} {"buckets":3}`))
	f.Add([]byte("\xff\xfe{broken"))

	f.Fuzz(func(t *testing.T, data []byte) {
		cfg, err := LoadConfig(data)
		if err != nil {
			return
		}
		if verr := cfg.Validate(); verr != nil {
			t.Fatalf("LoadConfig accepted a config its own Validate rejects: %v\ninput: %q", verr, data)
		}
	})
}
