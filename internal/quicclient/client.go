// Package quicclient dials QUIC handshakes over UDP — the active
// measurement counterpart to the telescope's passive view. cmd/quicprobe
// uses it to reproduce the paper's §6 RETRY-deployment probe.
package quicclient

import (
	"errors"
	"fmt"
	"net"
	"time"

	"quicsand/internal/handshake"
	"quicsand/internal/wire"
)

// Result reports the outcome of one handshake attempt.
type Result struct {
	// Completed is true when the full 1-RTT handshake finished.
	Completed bool
	// SawRetry reports whether the server demanded address validation
	// — the paper's RETRY-deployment signal.
	SawRetry bool
	// SawVersionNegotiation reports a version-negotiation round.
	SawVersionNegotiation bool
	// Version is the final wire version.
	Version wire.Version
	// RTTs counts round trips consumed (retry adds one).
	RTTs int
	// Elapsed is the wall-clock handshake time.
	Elapsed time.Duration
}

// Config parameterizes Dial.
type Config struct {
	// Version to offer initially; defaults to v1.
	Version wire.Version
	// ServerName for SNI.
	ServerName string
	// Timeout per round trip; default 2 s.
	Timeout time.Duration
	// Retries per flight before giving up; default 2.
	Retries int
}

// Dial performs a handshake against addr over a fresh UDP socket.
func Dial(addr string, cfg Config) (*Result, error) {
	raddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, err
	}
	conn, err := net.DialUDP("udp", nil, raddr)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	return DialConn(conn, cfg)
}

// DialConn performs a handshake over an established packet connection.
func DialConn(conn net.Conn, cfg Config) (*Result, error) {
	if cfg.Timeout == 0 {
		cfg.Timeout = 2 * time.Second
	}
	if cfg.Retries == 0 {
		cfg.Retries = 2
	}
	client, err := handshake.NewClient(handshake.ClientConfig{
		Version:    cfg.Version,
		ServerName: cfg.ServerName,
	})
	if err != nil {
		return nil, err
	}
	start := time.Now()
	first, err := client.Start()
	if err != nil {
		return nil, err
	}

	res := &Result{RTTs: 1}
	pending := [][]byte{first}
	buf := make([]byte, 65535)

	for attempt := 0; attempt <= cfg.Retries && !client.Done(); attempt++ {
		for _, d := range pending {
			if _, err := conn.Write(d); err != nil {
				return nil, fmt.Errorf("quicclient: write: %w", err)
			}
		}
		deadline := time.Now().Add(cfg.Timeout)
		var next [][]byte
		for !client.Done() {
			if err := conn.SetReadDeadline(deadline); err != nil {
				return nil, err
			}
			n, err := conn.Read(buf)
			if err != nil {
				var nerr net.Error
				if errors.As(err, &nerr) && nerr.Timeout() {
					break // retransmit the pending flight
				}
				return nil, fmt.Errorf("quicclient: read: %w", err)
			}
			out, err := client.HandleDatagram(append([]byte(nil), buf[:n]...))
			if err != nil {
				return nil, err
			}
			if len(out) > 0 {
				next = out
				for _, d := range out {
					if _, err := conn.Write(d); err != nil {
						return nil, err
					}
				}
				if client.SawRetry() || client.SawVersionNegotiation() {
					res.RTTs++
					deadline = time.Now().Add(cfg.Timeout)
				}
			}
		}
		if len(next) > 0 {
			pending = next
		}
	}

	res.Completed = client.Done()
	res.SawRetry = client.SawRetry()
	res.SawVersionNegotiation = client.SawVersionNegotiation()
	res.Version = client.Version()
	res.Elapsed = time.Since(start)
	if res.Completed {
		res.RTTs++ // the finished flight
	}
	return res, nil
}

// RecordInitials generates n independent client Initial datagrams (the
// 500 k-packet trace of the paper's benchmark methodology: record real
// client traffic, then replay only the Initials).
func RecordInitials(n int, version wire.Version, serverName string) ([][]byte, error) {
	out := make([][]byte, 0, n)
	for i := 0; i < n; i++ {
		c, err := handshake.NewClient(handshake.ClientConfig{Version: version, ServerName: serverName})
		if err != nil {
			return nil, err
		}
		d, err := c.Start()
		if err != nil {
			return nil, err
		}
		out = append(out, d)
	}
	return out, nil
}
