package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRunHeadlineSmoke exercises flag parsing and a tiny-scale run
// through the real pipeline, including the -workers knob.
func TestRunHeadlineSmoke(t *testing.T) {
	var out, errOut bytes.Buffer
	err := run([]string{
		"-seed", "3", "-scale", "0.002", "-thin", "1048576",
		"-workers", "2", "-fig", "headline", "-stats",
	}, &out, &errOut)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "QUIC packets captured") {
		t.Errorf("headline output missing:\n%s", out.String())
	}
	if !strings.Contains(errOut.String(), "2 workers") {
		t.Errorf("-stats output missing worker count:\n%s", errOut.String())
	}
}

func TestRunTraceFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "month.qsnd")
	var out, errOut bytes.Buffer
	err := run([]string{
		"-seed", "3", "-scale", "0.002", "-skip-research",
		"-workers", "4", "-fig", "headline", "-trace", path,
	}, &out, &errOut)
	if err != nil {
		t.Fatal(err)
	}
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() == 0 {
		t.Error("trace file empty")
	}
	if !strings.Contains(errOut.String(), "records written") {
		t.Errorf("trace summary missing:\n%s", errOut.String())
	}
}

func TestRunBadFlags(t *testing.T) {
	var out, errOut bytes.Buffer
	if err := run([]string{"-fig", "nope", "-scale", "0.002", "-skip-research"}, &out, &errOut); err == nil {
		t.Error("unknown -fig accepted")
	}
	if err := run([]string{"-no-such-flag"}, &out, &errOut); err == nil {
		t.Error("unknown flag accepted")
	}
}
