// Package capture is the trace ingestion and export subsystem: it
// gives the pipeline a first-class path from stored packets — real
// pcaps or native QSND checkpoints — into the sharded analysis engine,
// and back out again.
//
// Three pieces compose:
//
//   - a pure-Go (no cgo) streaming reader/writer for the classic
//     libpcap file format (PcapReader/PcapWriter): micro- and
//     nanosecond timestamp variants in either byte order, Ethernet,
//     Linux-SLL and raw-IP link types, IPv4/UDP decode down to the
//     UDP payload (plus the TCP/ICMP metadata the common-vector
//     baseline needs);
//   - the Source abstraction both readers implement, with format
//     auto-detection (NewSource), and the matching Sink over both
//     writers (NewSink);
//   - the scatter stage (Scatter) that fans one stored stream out to
//     per-shard engine feeds, sharded by source address with
//     slab-batched zero-copy decode — quicsand.Replay's input path.
//
// Export uses real wire encapsulation (Ethernet/IPv4 with valid
// checksums), so generated months open cleanly in tcpdump/Wireshark;
// a 12-byte Ethernet trailer carries the fields pcap cannot express
// (the thinning weight and the claimed original datagram size), which
// standard tools display as frame padding and our reader folds back
// losslessly.
package capture

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"strings"

	"quicsand/internal/netmodel"
	"quicsand/internal/salvage"
	"quicsand/internal/telescope"
)

// Source streams stored packets in capture order. It is the replay
// twin of ibr.Source, with the same ownership contract: the packet
// returned by Next — including its Payload bytes — is valid only until
// the following Next call. Consumers that retain packets must copy
// them (the scatter stage copies into per-shard slabs).
type Source interface {
	// Next returns the next packet, or io.EOF at a clean end of
	// stream. Any other error means the stream is corrupt or unreadable
	// at the reported point; no further packets follow.
	Next() (*telescope.Packet, error)
}

// SpanDecoder turns a framed record span into a packet. Decoders are
// immutable values safe for concurrent use from every shard worker —
// the whole point of the framing/decode split (DESIGN.md §16): the
// single reader goroutine only frames records, and the per-record
// parse work runs sharded. false reports a record outside the packet
// model (pcap decapsulation drops); decode of a framed span never
// fails otherwise, because the framer already validated the bytes.
// p.Payload aliases the span: the span's owner sets the lifetime.
type SpanDecoder interface {
	DecodeSpan(span []byte, p *telescope.Packet) bool
}

// SpanSource is the framing-side interface of the decode-after-scatter
// path. Sources that implement it let the scatter split ingest in two:
// FrameNext on the reader goroutine parses just enough of the next
// record to size its span and route it (source address), TakeSpan
// completes the raw bytes into the destination shard's arena, and the
// shard decodes batches of spans with the SpanDecoder. The scatter
// probes for this interface and falls back to Next when absent (e.g.
// fault-injection wrappers, which must stay on the sequential path so
// injected faults keep their record-accurate semantics).
type SpanSource interface {
	Source
	// FrameNext frames the next record, returning the span length and
	// the source address for shard routing; io.EOF at a clean end of
	// stream. Salvage policy applies exactly as in Next.
	FrameNext() (int, netmodel.Addr, error)
	// TakeSpan completes the framed record into dst (len(dst) is the
	// length FrameNext returned) and returns the span to hand to the
	// shard — dst itself, or a stable subslice of source-owned memory
	// when SpanStable (dst is ignored then and may be nil). A
	// salvage.ErrRecordLost return means the framed record was lost to
	// a mid-payload resync (drop it, keep framing); io.EOF a torn tail.
	TakeSpan(dst []byte) ([]byte, error)
	// SpanStable reports whether returned spans outlive the next
	// FrameNext without copying — true for memory-backed sources,
	// where the caller must then not recycle span memory.
	SpanStable() bool
	// SpanDecoder returns the source's concurrent-safe decoder.
	SpanDecoder() SpanDecoder
}

// Sink is a trace export target: a telescope capture sink with the
// error-reporting surface batch exporters need. telescope.Writer and
// PcapWriter both implement it.
type Sink interface {
	telescope.Sink
	// Write appends one record, reporting the first error eagerly.
	Write(*telescope.Packet) error
	// Flush drains buffered output; it and Err report the first
	// failure of the whole write sequence (full disk included), which
	// the fire-and-forget Capture path retains rather than surfacing.
	Flush() error
	// Err returns the sticky first write error, or nil.
	Err() error
	// Count returns records written so far.
	Count() uint64
	// Dropped returns records discarded after the first write error.
	Dropped() uint64
}

// Format identifies a trace container format.
type Format int

// Supported container formats.
const (
	FormatUnknown Format = iota
	FormatQSND           // native telescope checkpoint store
	FormatPcap           // classic libpcap
)

// String implements fmt.Stringer.
func (f Format) String() string {
	switch f {
	case FormatQSND:
		return "qsnd"
	case FormatPcap:
		return "pcap"
	}
	return "unknown"
}

// ErrUnknownFormat reports a stream whose leading magic matches no
// supported container.
var ErrUnknownFormat = errors.New("capture: unrecognized trace format (neither QSND nor pcap)")

// FormatForPath picks an export format from a file name: .pcap/.cap
// (and the compressed-suffix-free variants tools emit) select pcap,
// everything else the native store.
func FormatForPath(path string) Format {
	lower := strings.ToLower(path)
	if strings.HasSuffix(lower, ".pcap") || strings.HasSuffix(lower, ".cap") ||
		strings.HasSuffix(lower, ".dmp") {
		return FormatPcap
	}
	return FormatQSND
}

// sniffFormat identifies the container by its leading magic without
// consuming it.
func sniffFormat(br *bufio.Reader) (Format, error) {
	magic, err := br.Peek(4)
	if err != nil {
		if errors.Is(err, io.EOF) {
			return FormatUnknown, io.EOF
		}
		return FormatUnknown, err
	}
	switch {
	case magic[0] == 0x44 && magic[1] == 0x4e && magic[2] == 0x53 && magic[3] == 0x51:
		// "QSND" little endian.
		return FormatQSND, nil
	case isPcapMagic(magic):
		return FormatPcap, nil
	}
	return FormatUnknown, ErrUnknownFormat
}

// NewSource opens a stored packet stream, auto-detecting QSND vs pcap
// by magic. The returned Source reuses one packet and payload buffer
// across Next calls (see the Source ownership contract).
func NewSource(r io.Reader) (Source, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	f, err := sniffFormat(br)
	if err != nil {
		if errors.Is(err, io.EOF) {
			return nil, fmt.Errorf("capture: empty stream: %w", ErrUnknownFormat)
		}
		return nil, err
	}
	switch f {
	case FormatQSND:
		return &qsndSource{r: telescope.NewReader(br)}, nil
	default:
		return NewPcapReader(br)
	}
}

// NewSink creates an export sink writing the given format.
func NewSink(w io.Writer, f Format) Sink {
	if f == FormatPcap {
		return NewPcapWriter(w)
	}
	return telescope.NewWriter(w)
}

// qsndSource adapts telescope.Reader to Source with buffer reuse: the
// allocation-free ReadInto path recycles one Packet and its payload
// capacity, honoring the Source validity contract.
type qsndSource struct {
	r *telescope.Reader
	p telescope.Packet
}

func (s *qsndSource) Next() (*telescope.Packet, error) {
	if err := s.r.ReadInto(&s.p); err != nil {
		return nil, err
	}
	return &s.p, nil
}

// qsndDecoder is the QSND span decoder: telescope.DecodeRecord behind
// the SpanDecoder interface. Every framed QSND span is a complete,
// validated record, so decode never drops.
type qsndDecoder struct{}

func (qsndDecoder) DecodeSpan(span []byte, p *telescope.Packet) bool {
	telescope.DecodeRecord(span, p)
	return true
}

// SpanSource implementation: framing delegates to the telescope
// reader, which streams each payload directly into the shard's arena.
func (s *qsndSource) FrameNext() (int, netmodel.Addr, error) { return s.r.FrameNext() }
func (s *qsndSource) TakeSpan(dst []byte) ([]byte, error)    { return s.r.TakeSpan(dst) }
func (s *qsndSource) SpanStable() bool                       { return false }
func (s *qsndSource) SpanDecoder() SpanDecoder               { return qsndDecoder{} }

// SpanSource implementation for the pcap reader: spans are framed into
// the reader's reused buffer, so they must be copied out (not stable).
func (pr *PcapReader) SpanStable() bool         { return false }
func (pr *PcapReader) SpanDecoder() SpanDecoder { return pr.pcapDecoder }

// SourceFormat reports which container a Source produced by NewSource
// is reading.
func SourceFormat(src Source) Format {
	switch src.(type) {
	case *qsndSource, *qsndBufSource:
		return FormatQSND
	case *PcapReader:
		return FormatPcap
	}
	return FormatUnknown
}

// SourceSkipped reports how many records the source dropped during
// decode (non-UDP/IPv4 pcap frames); always zero for the lossless
// native store.
func SourceSkipped(src Source) uint64 {
	if pr, ok := src.(*PcapReader); ok {
		return pr.Skipped
	}
	return 0
}

// SalvagePolicy selects fail-fast vs degraded ingest — see
// salvage.Policy.
type SalvagePolicy = salvage.Policy

// SalvageStats is the skipped-record ledger — see salvage.Stats.
type SalvageStats = salvage.Stats

// SetSalvage installs a salvage policy on a Source produced by
// NewSource. Sources without a degraded mode ignore it.
func SetSalvage(src Source, pol SalvagePolicy) {
	switch s := src.(type) {
	case *qsndSource:
		s.r.SetSalvage(pol)
	case *qsndBufSource:
		s.b.SetSalvage(pol)
	case *PcapReader:
		s.SetSalvage(pol)
	}
}

// SourceSalvage reports a Source's skipped-record ledger; all zeros
// for undamaged streams and for sources without a degraded mode.
func SourceSalvage(src Source) SalvageStats {
	switch s := src.(type) {
	case *qsndSource:
		return s.r.Salvage()
	case *qsndBufSource:
		return s.b.Salvage()
	case *PcapReader:
		return s.Salvage()
	}
	return SalvageStats{}
}

// Copy streams every record from src into dst — the convert path.
// It returns the record count; the caller owns Flush.
func Copy(dst Sink, src Source) (uint64, error) {
	var n uint64
	for {
		p, err := src.Next()
		if err != nil {
			if errors.Is(err, io.EOF) {
				return n, nil
			}
			return n, err
		}
		if err := dst.Write(p); err != nil {
			return n, err
		}
		n++
	}
}
