package ibr

import (
	"quicsand/internal/telemetry"
	"quicsand/internal/telescope"
)

// slabChunk is the packet-slab granularity for incrementally producing
// sources (research scans): one allocation per 256 packets instead of
// one per packet.
const slabChunk = 256

// maxFreeSlabs bounds a pool's freelist; beyond it slabs are dropped
// for the GC rather than hoarded.
const maxFreeSlabs = 32

// slabPool recycles value-typed packet slabs ([]telescope.Packet
// arenas) within one shard. All methods are nil-receiver safe: a nil
// pool degrades to plain allocation with no recycling, which is the
// required mode whenever downstream stages may retain packet pointers
// past the sink call (the engine's trace tap buffers packets across
// goroutines — see DESIGN.md "Packet ownership & lifetime").
//
// A pool is single-goroutine property of its merger: sources return
// their slab on exhaustion and later-activating sources of the same
// shard reuse it. The merger's one-packet lookahead makes this safe —
// a slab is only handed out again on a later Next call, after the
// slab's final packet has been fully processed by the synchronous
// sink chain.
type slabPool struct {
	free [][]telescope.Packet
	// recycle gates the freelist. A non-recycling pool (the trace-tap
	// mode, where downstream retains packet pointers) still exists as a
	// stats conduit but degrades to plain allocation.
	recycle bool
	// stats, when set, counts slab traffic into the owning merger's
	// Generate bank.
	stats *telemetry.Generate
}

// genStats returns the pool's Generate bank, nil-receiver safe, for
// wiring into payload caches and other per-shard consumers.
func (p *slabPool) genStats() *telemetry.Generate {
	if p == nil {
		return nil
	}
	return p.stats
}

// get returns an empty slab with capacity ≥ n, reusing a free one when
// available. Only the most recently freed slabs are inspected so get
// stays O(1) under mixed slab sizes.
func (p *slabPool) get(n int) []telescope.Packet {
	if p != nil {
		if p.stats != nil {
			p.stats.SlabGets++
		}
		if p.recycle {
			lo := len(p.free) - 4
			if lo < 0 {
				lo = 0
			}
			for i := len(p.free) - 1; i >= lo; i-- {
				if cap(p.free[i]) >= n {
					s := p.free[i]
					last := len(p.free) - 1
					p.free[i] = p.free[last]
					p.free[last] = nil
					p.free = p.free[:last]
					if p.stats != nil {
						p.stats.SlabReuses++
					}
					return s[:0]
				}
			}
		}
	}
	return make([]telescope.Packet, 0, n)
}

// put returns a slab to the pool for reuse. The caller must guarantee
// no packet inside s is still referenced downstream.
func (p *slabPool) put(s []telescope.Packet) {
	if p == nil || !p.recycle || cap(s) == 0 {
		return
	}
	if len(p.free) < maxFreeSlabs {
		p.free = append(p.free, s[:0])
	}
}

// ensure returns s with room for at least extra more packets. Growth
// goes through the pool: the values move to a larger (possibly
// recycled) arena and the abandoned one returns to the freelist —
// a plain append would leak the pooled slab to the GC mid-build.
// Safe during building only, before any packet pointer escapes.
func (p *slabPool) ensure(s []telescope.Packet, extra int) []telescope.Packet {
	need := len(s) + extra
	if cap(s) >= need {
		return s
	}
	if c := 2 * cap(s); c > need {
		need = c
	}
	grown := p.get(need)[:len(s)]
	copy(grown, s)
	p.put(s)
	return grown
}

// pooled is implemented by sources that can draw their packet storage
// from a shard slab pool; the merger injects its pool at registration.
type pooled interface {
	setPool(*slabPool)
}
