package detect

import (
	"strings"
	"testing"
	"time"

	"quicsand/internal/netmodel"
	"quicsand/internal/telescope"
)

// testConfig is a tiny deterministic configuration: 1 s window over
// two 500 ms buckets, RateCount = floor(2×1)+1 = 3, fraction detectors
// parked behind an unreachable evidence floor so only the rate state
// machine moves.
func testConfig() Config {
	return Config{
		Window:             time.Second,
		Buckets:            2,
		RatePPS:            2,
		MinInitialFraction: 0.9,
		MinCIDRatio:        0.9,
		MinPackets:         1 << 20,
	}
}

func pkt(src netmodel.Addr, ts telescope.Timestamp) *telescope.Packet {
	return &telescope.Packet{TS: ts, Src: src, Size: 100}
}

// TestRateEpisodeLifecycle drives the episode state machine through
// its full contract: open at the threshold crossing, extend on every
// same-source packet (peak tracked), survive an intra-window gap, and
// close at the pre-silence packet once the source goes quiet for
// longer than one window.
func TestRateEpisodeLifecycle(t *testing.T) {
	d := NewShard(testConfig())
	src := netmodel.Addr(0x2c000001)

	// Three packets inside one window cross RateCount=3 at t=200.
	for _, ts := range []telescope.Timestamp{0, 100, 200} {
		d.Observe(pkt(src, ts), nil)
	}
	if d.Metrics.AlertsOpened != 1 {
		t.Fatalf("episodes opened = %d, want 1 (rate crossed at t=200)", d.Metrics.AlertsOpened)
	}
	// Extensions: an intra-window gap (500 ms < window) keeps the
	// episode open however the windowed value wobbles.
	d.Observe(pkt(src, 400), nil)
	d.Observe(pkt(src, 900), nil)
	if got := d.Drain(); got != nil {
		t.Fatalf("episode closed while the source was active: %+v", got)
	}

	// Silence of 1600 ms > window closes at the previous packet (900),
	// and the post-gap window restarts empty (1 < RateCount: no reopen).
	d.Observe(pkt(src, 2500), nil)
	alerts := d.Drain()
	if len(alerts) != 1 {
		t.Fatalf("drained %d alerts, want 1: %+v", len(alerts), alerts)
	}
	want := Alert{Kind: KindRate, Src: src, Start: 200, End: 900, Peak: 5, PeakTS: 900, Packets: 3}
	if alerts[0] != want {
		t.Errorf("alert = %+v, want %+v", alerts[0], want)
	}
	// Nothing else is open: a flush after the close drains nothing.
	d.Flush()
	if got := d.Drain(); got != nil {
		t.Errorf("flush after close produced %+v", got)
	}
}

// TestFlushClosesOpenEpisodes pins the end-of-stream rule: Flush
// closes at the source's last packet, not at flush time.
func TestFlushClosesOpenEpisodes(t *testing.T) {
	d := NewShard(testConfig())
	src := netmodel.Addr(7)
	for _, ts := range []telescope.Timestamp{0, 100, 200, 600} {
		d.Observe(pkt(src, ts), nil)
	}
	d.Flush()
	alerts := d.Drain()
	if len(alerts) != 1 || alerts[0].End != 600 || alerts[0].Start != 200 {
		t.Fatalf("flush alerts = %+v, want one [200, 600] episode", alerts)
	}
	if d.Metrics.AlertsClosed != 1 {
		t.Errorf("AlertsClosed = %d, want 1", d.Metrics.AlertsClosed)
	}
}

// TestMaxSourcesEviction bounds window state: past MaxSources the
// coldest source is evicted with its open episodes closed at its last
// packet — alert evidence is never silently dropped.
func TestMaxSourcesEviction(t *testing.T) {
	cfg := testConfig()
	cfg.MaxSources = 2
	d := NewShard(cfg)
	hot := netmodel.Addr(1)
	for _, ts := range []telescope.Timestamp{0, 10, 20} {
		d.Observe(pkt(hot, ts), nil) // open episode on the soon-coldest
	}
	d.Observe(pkt(netmodel.Addr(2), 100), nil)
	d.Observe(pkt(netmodel.Addr(3), 200), nil) // third source: evict hot
	if n := d.Sources(); n != 2 {
		t.Errorf("tracked sources = %d, want 2 (budget)", n)
	}
	if d.Metrics.SourcesEvicted != 1 {
		t.Errorf("SourcesEvicted = %d, want 1", d.Metrics.SourcesEvicted)
	}
	alerts := d.Drain()
	if len(alerts) != 1 || alerts[0].Src != hot || alerts[0].End != 20 {
		t.Fatalf("eviction alerts = %+v, want the hot source's episode closed at 20", alerts)
	}
}

// TestMergeAlertsCanonical pins the cross-shard merge order: the
// loser-tree merge of canonically sorted per-shard lists is itself in
// canonical (Start, Src, Kind, End) order.
func TestMergeAlertsCanonical(t *testing.T) {
	a := []Alert{
		{Kind: KindRate, Src: 2, Start: 10, End: 20},
		{Kind: KindRate, Src: 1, Start: 30, End: 40},
	}
	b := []Alert{{Kind: KindInitialFraction, Src: 1, Start: 10, End: 15}}
	merged := MergeAlerts(a, b)
	if len(merged) != 3 {
		t.Fatalf("merged %d alerts, want 3", len(merged))
	}
	for i := 1; i < len(merged); i++ {
		if alertLess(&merged[i], &merged[i-1]) {
			t.Fatalf("merge out of canonical order at %d: %+v", i, merged)
		}
	}
	if merged[0].Src != 1 || merged[1].Src != 2 || merged[2].Src != 1 {
		t.Errorf("merge order = %+v", merged)
	}
}

// TestAlertJSONLines pins the -alerts stream format: human-readable
// kind and dotted source, millisecond timestamps, one object per line.
func TestAlertJSONLines(t *testing.T) {
	var sb strings.Builder
	alerts := []Alert{
		{Kind: KindRate, Src: 0x01020304, Start: 5, End: 9, Peak: 3.5, PeakTS: 7, Packets: 4},
		{Kind: KindCIDRatio, Src: 0x7f000001, Start: 6, End: 8},
	}
	if err := WriteAlerts(&sb, alerts); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(sb.String(), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("wrote %d lines, want 2:\n%s", len(lines), sb.String())
	}
	want := `{"kind":"rate","src":"1.2.3.4","start_ms":5,"end_ms":9,"peak":3.5,"peak_ts_ms":7,"packets":4}`
	if lines[0] != want {
		t.Errorf("line 0 = %s, want %s", lines[0], want)
	}
	if !strings.Contains(lines[1], `"kind":"cid-ratio"`) || !strings.Contains(lines[1], `"src":"127.0.0.1"`) {
		t.Errorf("line 1 = %s", lines[1])
	}
}
