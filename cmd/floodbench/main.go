// Command floodbench reproduces Table 1: service availability of a
// QUIC web server under Initial floods at increasing packet rates,
// with and without RETRY.
//
// The default mode runs the calibrated capacity model across the
// paper's nine configurations. With -live it additionally records a
// real Initial trace and replays it against a real UDP server on
// loopback at a modest rate.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"time"

	"quicsand/internal/flood"
	"quicsand/internal/quicserver"
	"quicsand/internal/tlsmini"
	"quicsand/internal/wire"
)

func main() {
	var (
		traceLen = flag.Int("trace", 500000, "recorded trace length (paper: 500,000)")
		live     = flag.Bool("live", false, "also replay against a real UDP server on loopback")
		livePPS  = flag.Int("live-pps", 500, "replay rate for -live")
		liveN    = flag.Int("live-n", 300, "trace length for -live")
	)
	flag.Parse()

	fmt.Println("Table 1: NGINX-style QUIC server under Initial floods (capacity model)")
	fmt.Println(flood.FormatTable(flood.Table1Rows(*traceLen)))
	fmt.Printf("calibration: %.0f ms/handshake, %.0f µs/retry, %d response datagrams per served Initial\n",
		flood.HandshakeCost.Seconds()*1000, flood.RetryCost.Seconds()*1e6, flood.ResponsesPerHandshake)
	fmt.Printf("paper's extrapolation: 27 pps at the /9 telescope ⇒ ≈%.0f pps Internet-wide\n\n", flood.ExtrapolateRate(27))

	if !*live {
		return
	}
	fmt.Printf("live replay: %d Initials at %d pps against a real server\n", *liveN, *livePPS)
	id, err := tlsmini.GenerateSelfSigned("bench.quicsand.test", 600)
	if err != nil {
		fatal(err)
	}
	trace, err := flood.RecordTrace(*liveN, wire.Version1)
	if err != nil {
		fatal(err)
	}
	for _, retry := range []bool{false, true} {
		pc, err := net.ListenPacket("udp", "127.0.0.1:0")
		if err != nil {
			fatal(err)
		}
		srv, err := quicserver.New(pc, quicserver.Config{Identity: id, Workers: 2, EnableRetry: retry})
		if err != nil {
			fatal(err)
		}
		res, err := flood.RunLive(flood.LiveConfig{
			Target: srv.Addr().String(), RatePPS: *livePPS, Trace: trace,
			Collect: time.Second,
		})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("retry=%-5v sent=%d responses=%d retries=%d accepted-conns=%d elapsed=%v\n",
			retry, res.Sent, res.Responses, res.RetryResponses,
			srv.Metrics.Accepted.Load(), res.Elapsed.Round(time.Millisecond))
		srv.Close()
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "floodbench:", err)
	os.Exit(1)
}
