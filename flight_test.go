package quicsand

import (
	"bytes"
	"encoding/json"
	"fmt"
	"testing"

	"quicsand/internal/capture"
	"quicsand/internal/telemetry"
	"quicsand/internal/telescope"
	"quicsand/internal/tlsmini"
)

// flightRec builds a small-slice recorder so even a 0.01-scale test
// month closes many slices per shard.
func flightRec() *telemetry.Recorder {
	return telemetry.NewRecorder(telemetry.RecorderConfig{SliceItems: 4096})
}

// TestFlightStructuralDeterminism is the flight recorder's acceptance
// contract (DESIGN.md §15): for a fixed scenario and worker count the
// per-stage event counts are identical across repeated runs and across
// live/qsnd/pcap execution — timestamps and durations are the only
// nondeterministic payload.
func TestFlightStructuralDeterminism(t *testing.T) {
	id, err := tlsmini.GenerateSelfSigned("quic.example.net", 600)
	if err != nil {
		t.Fatal(err)
	}
	base := Config{Seed: 97, Scale: 0.01, ResearchThin: 1 << 14, Identity: id}
	const workers = 3

	liveRun := func(trace telescope.Sink) *Analysis {
		cfg := base
		cfg.Workers, cfg.Trace, cfg.FlightRecorder = workers, trace, flightRec()
		a, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if a.Flight == nil {
			t.Fatal("recorder armed but Analysis.Flight is nil")
		}
		return a
	}

	var traceBuf bytes.Buffer
	ref := liveRun(telescope.NewWriter(&traceBuf))
	want := ref.Flight.StageSpans()
	if want["analyze"] == 0 || want["generate"] == 0 || want["dissect"] == 0 ||
		want["sessions"] == 0 || want["merge"] == 0 || want["plan"] != 1 || want["reduce"] != 1 {
		t.Fatalf("reference span structure implausible: %v", want)
	}
	if ref.Flight.Workers != workers {
		t.Fatalf("timeline workers = %d, want %d", ref.Flight.Workers, workers)
	}

	// Repeated live runs: identical span structure (checkpointed and
	// not — the tap changes merge spans, so compare like with like).
	var traceBuf2 bytes.Buffer
	if got := liveRun(telescope.NewWriter(&traceBuf2)).Flight.StageSpans(); !sameSpans(got, want) {
		t.Errorf("repeated live run diverged:\n want %v\n got  %v", want, got)
	}

	// Replays from both container formats, repeated: identical span
	// structure run-to-run and format-to-format.
	if err := flushWriter(ref.Config.Trace); err != nil {
		t.Fatal(err)
	}
	qsnd := traceBuf.Bytes()
	pcap := convertToPcap(t, qsnd)

	replaySpans := func(data []byte) map[string]uint64 {
		src, err := capture.NewSource(bytes.NewReader(data))
		if err != nil {
			t.Fatal(err)
		}
		cfg := base
		cfg.Workers, cfg.FlightRecorder = workers, flightRec()
		a, err := Replay(cfg, src)
		if err != nil {
			t.Fatal(err)
		}
		return a.Flight.StageSpans()
	}

	rq := replaySpans(qsnd)
	if got := replaySpans(qsnd); !sameSpans(got, rq) {
		t.Errorf("repeated qsnd replay diverged:\n want %v\n got  %v", rq, got)
	}
	if got := replaySpans(pcap); !sameSpans(got, rq) {
		t.Errorf("pcap replay diverged from qsnd:\n qsnd %v\n pcap %v", rq, got)
	}

	// Replay feed-side spans are named scatter/ingest instead of
	// generate; every shared stage must agree with the live run.
	if rq["scatter"] == 0 || rq["ingest"] == 0 || rq["generate"] != 0 {
		t.Errorf("replay feed stages wrong: %v", rq)
	}
	// Decode-after-scatter runs on the shards only during multi-worker
	// replay: live runs never decode, replays must record the stage.
	if want["decode"] != 0 {
		t.Errorf("live run recorded %d decode spans, want none", want["decode"])
	}
	if rq["decode"] == 0 {
		t.Errorf("multi-worker replay recorded no decode spans: %v", rq)
	}
	if rq["scatter"] != want["generate"] {
		t.Errorf("scatter spans %d != live generate spans %d (same slicing)", rq["scatter"], want["generate"])
	}
	for _, stage := range []string{"plan", "analyze", "dissect", "sessions", "reduce"} {
		if rq[stage] != want[stage] {
			t.Errorf("shared stage %q: replay %d != live %d", stage, rq[stage], want[stage])
		}
	}
}

// sameSpans compares two per-stage span-count maps.
func sameSpans(a, b map[string]uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// flushWriter settles a telescope trace sink if it buffers.
func flushWriter(s telescope.Sink) error {
	if w, ok := s.(*telescope.Writer); ok {
		return w.Flush()
	}
	return nil
}

// TestFlightTraceExportDeterminism checks the exported Chrome trace is
// structurally deterministic: after zeroing ts/dur values, two runs of
// the same scenario at the same worker count serialize byte-identically.
func TestFlightTraceExportDeterminism(t *testing.T) {
	run := func() []byte {
		cfg := Config{Seed: 7, Scale: 0.005, ResearchThin: 1 << 14,
			Workers: 2, FlightRecorder: flightRec()}
		a, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := a.Flight.WriteChromeTrace(&buf); err != nil {
			t.Fatal(err)
		}
		return normalizeTrace(t, buf.Bytes())
	}
	if a, b := run(), run(); !bytes.Equal(a, b) {
		t.Errorf("normalized traces differ:\n%s\n---\n%s", a, b)
	}
}

// normalizeTrace parses a Chrome trace and re-serializes it with every
// timestamp, duration and counter/arg value zeroed — the structural
// projection (event order, phases, tracks, names).
func normalizeTrace(t *testing.T, data []byte) []byte {
	t.Helper()
	var doc map[string]any
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("trace does not parse: %v", err)
	}
	evs, ok := doc["traceEvents"].([]any)
	if !ok {
		t.Fatal("traceEvents missing")
	}
	for _, raw := range evs {
		e := raw.(map[string]any)
		delete(e, "ts")
		delete(e, "dur")
		if e["ph"] == "C" || e["ph"] == "X" {
			// Counter values and span item counts are stream-derived and
			// deterministic too, but the merge span's per-slice item split
			// between full/final slices is; keep them and only strip time.
			continue
		}
	}
	out, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestFlightRingOverflow forces ring overflow on a real run and checks
// the run completes, losses are counted, and the export stays loadable.
func TestFlightRingOverflow(t *testing.T) {
	cfg := Config{Seed: 3, Scale: 0.005, ResearchThin: 1 << 14, Workers: 2,
		FlightRecorder: telemetry.NewRecorder(telemetry.RecorderConfig{
			SliceItems: 256, RingEvents: 8,
		})}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Flight.Dropped == 0 {
		t.Fatal("tiny rings on a real run recorded zero drops")
	}
	var buf bytes.Buffer
	if err := a.Flight.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("overflowed trace does not parse: %v", err)
	}
	if !bytes.Contains([]byte(a.StatsReport()), []byte("dropped on full rings")) {
		t.Error("stats report does not surface ring drops")
	}
}

// TestFlightDisabledByDefault pins the zero-cost default: without a
// recorder the analysis carries no timeline and results are identical
// to a recorded run's.
func TestFlightDisabledByDefault(t *testing.T) {
	base := Config{Seed: 5, Scale: 0.005, ResearchThin: 1 << 14, Workers: 2}
	plain, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Flight != nil {
		t.Fatal("unrecorded run carries a flight timeline")
	}
	rec := base
	rec.FlightRecorder = flightRec()
	traced, err := Run(rec)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := traced.Headline(), plain.Headline(); got != want {
		t.Errorf("recorder changed analysis results:\n want %s\n got  %s", want, got)
	}
	if got, want := fmt.Sprint(traced.Telemetry.Stream()), fmt.Sprint(plain.Telemetry.Stream()); got != want {
		t.Errorf("recorder changed stream telemetry:\n want %s\n got  %s", want, got)
	}
}
