// Package detect implements the streaming counterpart of the batch
// detectors: ring-buffered sliding-window detectors over per-source
// telescope traffic, emitting a deterministic alert stream.
//
// Three windowed quantities are watched per source — exactly the
// thresholds the paper applies post-hoc (§5.2, Figure 9), evaluated
// online: packet rate (Moore et al.'s intensity criterion), the
// Initial-packet fraction of QUIC traffic, and the unique-CID/packet
// ratio that separates flood backscatter from ordinary responders.
//
// # Alert episodes
//
// An alert is an episode, not a sample: it opens when its windowed
// condition first crosses the threshold, stays open while the source
// keeps transmitting (every packet extends End and updates the peak),
// and closes only when the source goes quiet for longer than one full
// window, or at Flush. The closing rule makes episode counts provable
// from a scheduling ledger: inside one burst of activity whose
// inter-packet gaps never exceed the window, a source produces at
// most one episode per kind — however the windowed value wobbles —
// and an episode boundary always witnesses a real >window silence.
//
// # Window coverage
//
// The ring holds Buckets fixed-width buckets; the window sum at
// packet time t always covers at least [t−Weff, t] where
// Weff = Window − Window/Buckets (the partial leading bucket is the
// only slack). The oracle's guaranteed-alert bound builds on exactly
// this: any ≤Weff interval holding ≥ RateCount packets forces the
// rate condition true at that interval's last packet.
//
// # Determinism
//
// Sources are partitioned over shards by address (one source, one
// shard), so per-source window state sees the identical packet
// subsequence at any worker count; per-shard alert lists are sorted
// canonically and merged with the loser tree. Only a MaxSources
// budget breaks this invariance (eviction depends on shard
// residency), mirroring the sessionizer's MaxActive trade.
package detect

import (
	"encoding/json"
	"io"
	"sort"

	"quicsand/internal/dissect"
	"quicsand/internal/losertree"
	"quicsand/internal/netmodel"
	"quicsand/internal/telemetry"
	"quicsand/internal/telescope"
	"quicsand/internal/wire"
)

// Kind identifies which windowed detector raised an alert.
type Kind uint8

// Alert kinds.
const (
	KindRate            Kind = iota // per-source packet rate above RatePPS
	KindInitialFraction             // Initial share of QUIC packets above threshold
	KindCIDRatio                    // unique-CID/packet ratio above threshold
	numKinds
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindRate:
		return "rate"
	case KindInitialFraction:
		return "initial-fraction"
	case KindCIDRatio:
		return "cid-ratio"
	}
	return "unknown"
}

// Alert is one closed detector episode.
type Alert struct {
	Kind    Kind
	Src     netmodel.Addr
	Start   telescope.Timestamp
	End     telescope.Timestamp
	Peak    float64
	PeakTS  telescope.Timestamp
	Packets uint64
}

// MarshalJSON renders the alert with human-readable kind and dotted
// source address — the JSON-lines form the daemon's -alerts stream
// emits. Timestamps stay epoch milliseconds (the telescope clock).
func (a Alert) MarshalJSON() ([]byte, error) {
	return json.Marshal(struct {
		Kind    string  `json:"kind"`
		Src     string  `json:"src"`
		StartMS int64   `json:"start_ms"`
		EndMS   int64   `json:"end_ms"`
		Peak    float64 `json:"peak"`
		PeakMS  int64   `json:"peak_ts_ms"`
		Packets uint64  `json:"packets"`
	}{a.Kind.String(), a.Src.String(), int64(a.Start), int64(a.End), a.Peak, int64(a.PeakTS), a.Packets})
}

// WriteAlerts appends alerts to w as JSON lines, one object per line —
// the format `telescoped -alerts` and `quicsand replay -alerts` share.
func WriteAlerts(w io.Writer, alerts []Alert) error {
	for i := range alerts {
		b, err := json.Marshal(&alerts[i])
		if err != nil {
			return err
		}
		if _, err := w.Write(append(b, '\n')); err != nil {
			return err
		}
	}
	return nil
}

// alertLess is the canonical alert order: (Start, Src, Kind, End).
func alertLess(a, b *Alert) bool {
	if a.Start != b.Start {
		return a.Start < b.Start
	}
	if a.Src != b.Src {
		return a.Src < b.Src
	}
	if a.Kind != b.Kind {
		return a.Kind < b.Kind
	}
	return a.End < b.End
}

// SortAlerts orders alerts canonically.
func SortAlerts(list []Alert) {
	sort.Slice(list, func(i, j int) bool { return alertLess(&list[i], &list[j]) })
}

// MergeAlerts k-way merges per-shard canonically-sorted alert lists
// into one canonical stream using the loser tree.
func MergeAlerts(lists ...[]Alert) []Alert {
	total := 0
	for _, l := range lists {
		total += len(l)
	}
	if total == 0 {
		return nil
	}
	out := make([]Alert, 0, total)
	pos := make([]int, len(lists))
	exhausted := func(i int32) bool { return pos[i] >= len(lists[i]) }
	tree := losertree.New(len(lists), func(a, b int32) bool {
		ea, eb := exhausted(a), exhausted(b)
		if ea || eb {
			return !ea && eb || (ea == eb && a < b)
		}
		x, y := &lists[a][pos[a]], &lists[b][pos[b]]
		if alertLess(x, y) {
			return true
		}
		if alertLess(y, x) {
			return false
		}
		return a < b
	})
	for {
		w := tree.Winner()
		if w < 0 || exhausted(w) {
			break
		}
		out = append(out, lists[w][pos[w]])
		pos[w]++
		tree.Fix(w)
	}
	return out
}

// Fixed shape limits: the bucket ring and per-bucket CID slots are
// inline arrays so source state is one flat allocation that recycles
// through a freelist.
const (
	// MaxBuckets bounds Config.Buckets.
	MaxBuckets = 16
	// cidSlots is the per-bucket distinct-CID capacity; buckets
	// saturate at this many distinct CIDs (the ratio test only needs
	// "many distinct", not an exact count).
	cidSlots = 8
)

type episode struct {
	active  bool
	start   telescope.Timestamp
	peak    float64
	peakTS  telescope.Timestamp
	packets uint64
}

// srcState is one source's window ring plus open episodes. ~1.3 KiB,
// freelist-recycled, no per-packet allocation.
type srcState struct {
	src    netmodel.Addr
	lastTS telescope.Timestamp
	// curUnit is the absolute bucket index (TS/bucketMS) of the
	// leading bucket; slot i holds unit u with u%Buckets == i.
	curUnit int64
	seen    bool

	counts   [MaxBuckets]uint32 // QUIC-candidate packets
	quic     [MaxBuckets]uint32 // dissected QUIC packets (coalesced incl.)
	initials [MaxBuckets]uint32
	cids     [MaxBuckets][cidSlots]uint64
	cidN     [MaxBuckets]uint8

	open [numKinds]episode
}

func (s *srcState) reset(src netmodel.Addr) {
	*s = srcState{src: src}
}

func (s *srcState) clearBucket(i int) {
	s.counts[i] = 0
	s.quic[i] = 0
	s.initials[i] = 0
	s.cidN[i] = 0
}

// Shard is one pipeline shard's detector bank. Single-writer like the
// other shard operators; the driver merges alert streams at drain
// time.
type Shard struct {
	cfg Config
	// derived, fixed after New
	windowMS  int64
	bucketMS  int64
	rateCount uint32

	sources map[netmodel.Addr]*srcState
	free    []*srcState
	closed  []Alert

	// Metrics accumulates this shard's counters (merged at reduce).
	Metrics telemetry.Detect
}

// NewShard builds a detector bank for one shard. cfg must be valid
// (call Config.Validate or use Default).
func NewShard(cfg Config) *Shard {
	return &Shard{
		cfg:       cfg,
		windowMS:  cfg.Window.Milliseconds(),
		bucketMS:  cfg.Window.Milliseconds() / int64(cfg.Buckets),
		rateCount: uint32(cfg.RateCount()),
		sources:   make(map[netmodel.Addr]*srcState),
	}
}

// Config returns the shard's configuration.
func (d *Shard) Config() Config { return d.cfg }

// Observe feeds one QUIC-candidate packet (with its optional
// dissection) into the source's window and updates episodes. Packets
// must arrive in non-decreasing time order, as everywhere else in the
// pipeline.
func (d *Shard) Observe(p *telescope.Packet, res *dissect.Result) {
	d.Metrics.Observed++
	st := d.sources[p.Src]
	if st == nil {
		st = d.newSource(p.Src)
	}

	// A >window silence ends every open episode at the last packet
	// before the gap and clears the ring: the window restarts empty.
	if st.seen && int64(p.TS-st.lastTS) > d.windowMS {
		d.closeAll(st, st.lastTS)
		st.reset(st.src)
	}

	// Advance the ring to p.TS's bucket, clearing skipped buckets.
	unit := int64(p.TS) / d.bucketMS
	if !st.seen {
		st.curUnit = unit
		st.seen = true
	} else if unit > st.curUnit {
		steps := unit - st.curUnit
		if steps >= int64(d.cfg.Buckets) {
			for i := 0; i < d.cfg.Buckets; i++ {
				st.clearBucket(i)
			}
		} else {
			for u := st.curUnit + 1; u <= unit; u++ {
				st.clearBucket(int(u % int64(d.cfg.Buckets)))
			}
		}
		st.curUnit = unit
	}
	st.lastTS = p.TS
	slot := int(unit % int64(d.cfg.Buckets))

	st.counts[slot]++
	if res != nil {
		for i := range res.Packets {
			pi := &res.Packets[i]
			st.quic[slot]++
			if pi.Type == wire.PacketTypeInitial {
				st.initials[slot]++
			}
			cid := pi.SCID
			if len(cid) == 0 {
				cid = pi.DCID
			}
			if len(cid) > 0 {
				addCID(st, slot, fnv64(cid))
			}
		}
	}

	// Window sums.
	var count, quic, initials, cids uint32
	for i := 0; i < d.cfg.Buckets; i++ {
		count += st.counts[i]
		quic += st.quic[i]
		initials += st.initials[i]
		cids += uint32(st.cidN[i])
	}

	windowSec := float64(d.windowMS) / 1000
	d.episodeStep(st, KindRate, p.TS,
		count >= d.rateCount, float64(count)/windowSec)
	if quic >= uint32(d.cfg.MinPackets) {
		frac := float64(initials) / float64(quic)
		ratio := float64(cids) / float64(quic)
		d.episodeStep(st, KindInitialFraction, p.TS,
			frac >= d.cfg.MinInitialFraction, frac)
		d.episodeStep(st, KindCIDRatio, p.TS,
			ratio >= d.cfg.MinCIDRatio, ratio)
	} else {
		// Below the evidence floor the fraction conditions are not
		// evaluated, but open episodes still ride the packet stream.
		d.episodeStep(st, KindInitialFraction, p.TS, false, 0)
		d.episodeStep(st, KindCIDRatio, p.TS, false, 0)
	}
}

// episodeStep advances one kind's episode state machine at packet
// time ts: open on a true condition, extend while open (episodes
// close on silence, not on the condition dropping).
func (d *Shard) episodeStep(st *srcState, k Kind, ts telescope.Timestamp, cond bool, value float64) {
	ep := &st.open[k]
	if ep.active {
		ep.packets++
		if value > ep.peak {
			ep.peak = value
			ep.peakTS = ts
		}
		return
	}
	if !cond {
		return
	}
	ep.active = true
	ep.start = ts
	ep.peak = value
	ep.peakTS = ts
	ep.packets = 1
	d.Metrics.AlertsOpened++
}

// closeAll closes every open episode of st at end time end.
func (d *Shard) closeAll(st *srcState, end telescope.Timestamp) {
	for k := Kind(0); k < numKinds; k++ {
		ep := &st.open[k]
		if !ep.active {
			continue
		}
		d.closed = append(d.closed, Alert{
			Kind: k, Src: st.src,
			Start: ep.start, End: end,
			Peak: ep.peak, PeakTS: ep.peakTS,
			Packets: ep.packets,
		})
		d.Metrics.AlertsClosed++
		ep.active = false
	}
}

func (d *Shard) newSource(src netmodel.Addr) *srcState {
	if d.cfg.MaxSources > 0 && len(d.sources) >= d.cfg.MaxSources {
		d.evictColdest()
	}
	var st *srcState
	if n := len(d.free); n > 0 {
		st = d.free[n-1]
		d.free = d.free[:n-1]
	} else {
		st = &srcState{}
	}
	st.reset(src)
	d.sources[src] = st
	d.Metrics.SourcesTracked++
	return st
}

// evictColdest drops the source with the oldest last packet (ties
// toward the smallest address), closing its open episodes first so no
// alert evidence is lost — only future window context.
func (d *Shard) evictColdest() {
	var victim *srcState
	for _, st := range d.sources {
		if victim == nil || st.lastTS < victim.lastTS ||
			(st.lastTS == victim.lastTS && st.src < victim.src) {
			victim = st
		}
	}
	if victim == nil {
		return
	}
	d.closeAll(victim, victim.lastTS)
	delete(d.sources, victim.src)
	d.free = append(d.free, victim)
	d.Metrics.SourcesEvicted++
}

// Sources returns the number of sources currently holding window
// state — the quantity MaxSources bounds.
func (d *Shard) Sources() int { return len(d.sources) }

// Flush closes every open episode at its source's last packet time —
// end of stream or final drain.
func (d *Shard) Flush() {
	for _, st := range d.sources {
		d.closeAll(st, st.lastTS)
	}
}

// Drain removes and returns the closed alerts accumulated so far, in
// canonical order. The per-shard stream is then merged across shards
// with MergeAlerts.
func (d *Shard) Drain() []Alert {
	if len(d.closed) == 0 {
		return nil
	}
	out := d.closed
	d.closed = nil
	SortAlerts(out)
	return out
}

// addCID records a CID hash in the bucket's distinct-slot set,
// saturating at cidSlots.
func addCID(st *srcState, slot int, h uint64) {
	n := st.cidN[slot]
	if n >= cidSlots {
		return
	}
	for i := uint8(0); i < n; i++ {
		if st.cids[slot][i] == h {
			return
		}
	}
	st.cids[slot][n] = h
	st.cidN[slot] = n + 1
}

// fnv64 is FNV-1a over b (inline, alloc-free).
func fnv64(b []byte) uint64 {
	h := uint64(14695981039346656037)
	for _, c := range b {
		h = (h ^ uint64(c)) * 1099511628211
	}
	return h
}
