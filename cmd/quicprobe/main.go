// Command quicprobe performs the paper's §6 active measurement: it
// connects to QUIC servers and reports whether they demand RETRY
// address validation. The paper probed the ten most-attacked Google
// and Facebook servers and found RETRY universally disabled.
//
// Usage:
//
//	quicprobe host:port [host:port ...]   probe the given servers
//	quicprobe -demo                       probe two local servers
//	                                      (RETRY off and on)
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"time"

	"quicsand/internal/quicclient"
	"quicsand/internal/quicserver"
	"quicsand/internal/tlsmini"
	"quicsand/internal/wire"
)

func main() {
	var (
		demo    = flag.Bool("demo", false, "spin up local servers with RETRY off/on and probe them")
		sni     = flag.String("sni", "probe.quicsand.test", "server name to offer")
		version = flag.Uint("version", uint(wire.Version1), "wire version to offer")
		timeout = flag.Duration("timeout", 2*time.Second, "per-RTT timeout")
	)
	flag.Parse()

	if *demo {
		runDemo(*sni)
		return
	}
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: quicprobe [-demo] host:port ...")
		os.Exit(2)
	}
	for _, target := range flag.Args() {
		probe(target, *sni, wire.Version(*version), *timeout)
	}
}

func probe(target, sni string, v wire.Version, timeout time.Duration) {
	res, err := quicclient.Dial(target, quicclient.Config{
		Version: v, ServerName: sni, Timeout: timeout,
	})
	if err != nil {
		fmt.Printf("%-28s error: %v\n", target, err)
		return
	}
	retry := "RETRY NOT DEPLOYED"
	if res.SawRetry {
		retry = "RETRY deployed (+1 RTT)"
	}
	fmt.Printf("%-28s completed=%-5v version=%-14s rtts=%d  %s\n",
		target, res.Completed, res.Version, res.RTTs, retry)
}

func runDemo(sni string) {
	id, err := tlsmini.GenerateSelfSigned(sni, 600)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	for _, retry := range []bool{false, true} {
		pc, err := net.ListenPacket("udp", "127.0.0.1:0")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		srv, err := quicserver.New(pc, quicserver.Config{Identity: id, Workers: 2, EnableRetry: retry})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("local server (retry=%v):\n  ", retry)
		probe(srv.Addr().String(), sni, wire.Version1, 2*time.Second)
		srv.Close()
	}
	fmt.Println("\nThe paper's observation: production Google/Facebook servers behave")
	fmt.Println("like the first case — no RETRY, trading robustness for one RTT.")
}
