package telemetry

import (
	"io"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"
)

func scrape(t *testing.T, url string) (string, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body), resp.Header.Get("Content-Type")
}

// TestServerExposition walks a Server through its three phases — live
// counters only, heartbeat gauges, final snapshot — and asserts the
// /metrics document grows accordingly with the right content type.
func TestServerExposition(t *testing.T) {
	live := NewLive(2)
	srv, err := NewServer("127.0.0.1:0", live)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	url := "http://" + srv.Addr() + "/metrics"

	live.Shard(0).Packets.Add(3)
	live.Shard(0).Bytes.Add(300)
	live.Shard(1).Packets.Add(1)
	live.Shard(1).NonQUIC.Add(1)

	doc, ct := scrape(t, url)
	if !strings.Contains(ct, "text/plain; version=0.0.4") {
		t.Errorf("content type = %q", ct)
	}
	for _, want := range []string{
		"quicsand_live_packets_total 4",
		"quicsand_live_bytes_total 300",
		"quicsand_live_non_quic_total 1",
		`quicsand_live_shard_packets_total{shard="0"} 3`,
		`quicsand_live_shard_packets_total{shard="1"} 1`,
	} {
		if !strings.Contains(doc, want) {
			t.Errorf("live doc missing %q:\n%s", want, doc)
		}
	}
	if strings.Contains(doc, "quicsand_progress_") || strings.Contains(doc, "quicsand_dissect_") {
		t.Errorf("progress/final metrics exposed before being set:\n%s", doc)
	}

	srv.SetProgress(live.Progress())
	doc, _ = scrape(t, url)
	if !strings.Contains(doc, "quicsand_progress_packets_per_sec") ||
		!strings.Contains(doc, "quicsand_progress_goroutines") {
		t.Errorf("progress gauges missing:\n%s", doc)
	}

	snap := &Snapshot{Workers: 2}
	snap.Dissect.Datagrams = 4
	snap.Dissect.Packets = 3
	srv.SetFinal(snap)
	doc, _ = scrape(t, url)
	if !strings.Contains(doc, "quicsand_dissect_datagrams_total 4") {
		t.Errorf("final snapshot missing:\n%s", doc)
	}

	// pprof rides on the same mux.
	resp, err := http.Get("http://" + srv.Addr() + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("pprof cmdline status = %d", resp.StatusCode)
	}
}

// TestServerCloseNoLeak cycles server start/scrape/close and asserts
// the goroutine count returns to baseline.
func TestServerCloseNoLeak(t *testing.T) {
	baseline := runtime.NumGoroutine()
	for i := 0; i < 5; i++ {
		srv, err := NewServer("127.0.0.1:0", nil)
		if err != nil {
			t.Fatal(err)
		}
		scrape(t, "http://"+srv.Addr()+"/metrics")
		if err := srv.Close(); err != nil && err != http.ErrServerClosed {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= baseline+1 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: baseline %d, now %d\n%s",
				baseline, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestHeartbeatTicksAndStops asserts the heartbeat logs progress,
// refreshes the server, and that Stop is idempotent and leak-free.
func TestHeartbeatTicksAndStops(t *testing.T) {
	live := NewLive(1)
	live.Shard(0).Packets.Add(10)
	srv, err := NewServer("127.0.0.1:0", live)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	var mu sync.Mutex
	var lines []string
	hb := StartHeartbeat(live, srv, 5*time.Millisecond, func(format string, args ...any) {
		mu.Lock()
		lines = append(lines, strings.TrimSpace(format))
		mu.Unlock()
	})

	deadline := time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		n := len(lines)
		mu.Unlock()
		if n >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("heartbeat never ticked twice")
		}
		time.Sleep(5 * time.Millisecond)
	}

	hb.Stop()
	hb.Stop() // idempotent

	doc, _ := scrape(t, "http://"+srv.Addr()+"/metrics")
	if !strings.Contains(doc, "quicsand_progress_packets_per_sec") {
		t.Errorf("heartbeat never refreshed server gauges:\n%s", doc)
	}

	// After Stop returns the ticker goroutine has exited; no more lines
	// may arrive.
	mu.Lock()
	n := len(lines)
	mu.Unlock()
	time.Sleep(30 * time.Millisecond)
	mu.Lock()
	defer mu.Unlock()
	if len(lines) != n {
		t.Errorf("heartbeat ticked after Stop: %d -> %d lines", n, len(lines))
	}
}

// TestHeartbeatNilServerNilLog covers the degenerate wiring telescoped
// uses when -metrics is off: no server, no logger, still leak-free.
func TestHeartbeatNilServerNilLog(t *testing.T) {
	hb := StartHeartbeat(NewLive(1), nil, time.Millisecond, nil)
	time.Sleep(10 * time.Millisecond)
	hb.Stop()
}
