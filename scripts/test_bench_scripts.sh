#!/usr/bin/env sh
# test_bench_scripts.sh — regression tests for the perf-tooling shell
# scripts. The load-bearing case is numeric baseline selection:
# bench_diff.sh once picked its baseline with `ls | sort | tail -1`,
# which freezes at BENCH_PR9.json forever once BENCH_PR10.json exists
# (lexically "10" < "9"), silently gating every later PR against a
# stale snapshot. Run from anywhere: scripts/test_bench_scripts.sh
set -eu

cd "$(dirname "$0")/.."
repo="$(pwd)"

fails=0
check() { # check NAME CONDITION...
    name="$1"
    shift
    if "$@"; then
        echo "ok   $name"
    else
        echo "FAIL $name"
        fails=$((fails + 1))
    fi
}

# not CMD... — POSIX sh has no `!` builtin for `check` to forward to.
not() {
    if "$@"; then return 1; fi
    return 0
}

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

# A miniature repo root holding only the scripts and some snapshot
# fixtures, so the tests never touch the real checked-in baselines.
mkdir -p "$tmp/scripts"
cp scripts/bench_diff.sh scripts/bench_snapshot.sh "$tmp/scripts/"

record() { # record FILE NS ALLOCS
    printf '[\n  {"bench": "BenchmarkReplay", "ns_per_op": %s, "allocs_per_op": %s, "extra": {"packets/s":100}}\n]\n' \
        "$2" "$3" > "$tmp/$1"
}

# --- bench_diff.sh baseline selection -------------------------------

# PR2/PR9/PR10 fixtures: numeric order must pick PR10, where lexical
# order picks PR9.
record BENCH_PR2.json 300 30
record BENCH_PR9.json 200 20
record BENCH_PR10.json 100 10
record fresh.json 100 10

baseline_of() { # baseline_of → prints the baseline bench_diff chose
    (cd "$tmp" && ./scripts/bench_diff.sh fresh.json 2>&1 >/dev/null || true) |
        sed -n 's/^bench_diff: baseline \([^,]*\),.*/\1/p'
}

check "baseline is numerically-latest (PR10 over PR9)" \
    [ "$(baseline_of)" = "BENCH_PR10.json" ]

rm "$tmp/BENCH_PR10.json"
check "baseline falls back to PR9 without PR10" \
    [ "$(baseline_of)" = "BENCH_PR9.json" ]

# Non-PR-numbered snapshots only: lexical fallback still finds one.
mv "$tmp/BENCH_PR2.json" "$tmp/BENCH_manual.json"
rm "$tmp/BENCH_PR9.json"
check "baseline falls back to lexical order for non-PR names" \
    [ "$(baseline_of)" = "BENCH_manual.json" ]

# --- bench_diff.sh gating -------------------------------------------

record BENCH_PR9.json 100 10
rm "$tmp/BENCH_manual.json"

gate() { # gate NS ALLOCS → exit status of bench_diff
    record fresh.json "$1" "$2"
    (cd "$tmp" && ./scripts/bench_diff.sh fresh.json >/dev/null 2>&1)
}

check "no-change run passes the gate" gate 100 10
check "alloc regression beyond tolerance fails the gate" not gate 100 13
check "time regression beyond tolerance fails the gate" not gate 130 10
check "regression within tolerance passes the gate" gate 110 11

# --- bench_snapshot.sh default output name --------------------------

# The default must be highest-checked-in + 1 (it was once hardcoded to
# BENCH_PR8.json, silently overwriting PR 8's snapshot forever after).
# Only the name derivation is under test, so stub the `go` binary to
# emit one fake benchmark line instead of running the real suite.
mkdir -p "$tmp/bin"
cat > "$tmp/bin/go" <<'EOF'
#!/usr/bin/env sh
echo "BenchmarkStub 	       1	       100 ns/op	       0 B/op	       0 allocs/op"
EOF
chmod +x "$tmp/bin/go"

snapshot_default() { # snapshot_default → prints the derived name
    (cd "$tmp" && PATH="$tmp/bin:$PATH" ./scripts/bench_snapshot.sh 2>&1 >/dev/null || true) |
        sed -n 's/^wrote \(.*\)$/\1/p'
}

rm -f "$tmp"/BENCH_*.json "$tmp/fresh.json"
record BENCH_PR2.json 100 10
record BENCH_PR9.json 100 10
record BENCH_PR10.json 100 10
check "snapshot default is PR11 after PR10" \
    [ "$(snapshot_default)" = "BENCH_PR11.json" ]
check "snapshot default landed on disk" [ -s "$tmp/BENCH_PR11.json" ]

rm "$tmp"/BENCH_*.json
check "snapshot default starts at PR1 in an empty repo" \
    [ "$(snapshot_default)" = "BENCH_PR1.json" ]

cd "$repo"
if [ "$fails" -gt 0 ]; then
    echo "test_bench_scripts: $fails failure(s)" >&2
    exit 1
fi
echo "test_bench_scripts: all checks passed" >&2
